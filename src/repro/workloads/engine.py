"""The workload engine: compile a :class:`WorkloadSpec` into a multi-round drive.

Two drive modes (``repro.core.config.WORKLOAD_DRIVE_CHOICES``):

* ``simulation`` — every round is a full
  :class:`~repro.distributed.simulator.DistributedSimulation` round: the
  round's query batch is encoded, broadcast to the round's *active* stations
  (churn = per-round ``station_ids`` subsets), matched under the configured
  executor and uploaded through the event-driven transport.  Costs are the
  real per-round wire bytes.
* ``session`` — one long-running
  :class:`~repro.core.streaming.ContinuousMatchingSession` spans all rounds:
  query-batch rotations re-encode the artifact, churned stations are
  updated/removed incrementally, and only the dirty stations' deltas ship
  through a per-round :class:`~repro.distributed.network.SimulatedNetwork`.
  This is the steady-state serving model, where per-round traffic is the
  *delta*, not the whole round.

Determinism: every stochastic decision of a run — the synthetic city, each
round's query sample, the churn draws and the transport's fault schedule —
derives from ``(spec.name, spec.seed)`` via :func:`repro.utils.rng.derive_seed`
with a distinct label per process and round.  The resulting
:meth:`~repro.workloads.result.WorkloadResult.transcript_bytes` is therefore
byte-identical across runs and across station executors; the replay suite
under ``tests/workloads/`` pins this for every registered scenario.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from repro.core.config import DIMatchingConfig, WORKLOAD_DRIVE_CHOICES
from repro.core.streaming import ContinuousMatchingSession
from repro.datagen.workload import DatasetSpec, DistributedDataset, build_dataset
from repro.distributed.datacenter import DataCenterNode
from repro.distributed.faults import resolve_fault_plan
from repro.distributed.network import NetworkConfig, SimulatedNetwork
from repro.distributed.simulator import DistributedSimulation, _artifact_size_bytes
from repro.evaluation.experiments import ground_truth_users, make_protocols
from repro.evaluation.metrics import evaluate_retrieval
from repro.timeseries.query import QueryPattern
from repro.utils.rng import derive_seed, make_rng
from repro.workloads.result import RoundMetrics, WorkloadAggregator, WorkloadResult
from repro.workloads.spec import WorkloadSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.protocol import MatchingProtocol


def _round_net_seed(spec: WorkloadSpec, round_index: int) -> int:
    """The transport seed of one round — pure function of ``(name, seed, round)``."""
    return derive_seed(spec.seed, "workload-net", spec.name, round_index)


class _ChurnState:
    """Deterministic station membership across rounds.

    Stations are iterated in sorted order and every draw comes from a
    per-round RNG derived from the workload identity, so the membership
    schedule is independent of dict ordering, executors and call timing.
    """

    def __init__(self, spec: WorkloadSpec, station_ids: Sequence[str]) -> None:
        self._spec = spec
        self._all = sorted(str(station_id) for station_id in station_ids)
        self._active = list(self._all)

    @property
    def active(self) -> tuple[str, ...]:
        """The currently active stations, in sorted order."""
        return tuple(self._active)

    def step(self, round_index: int) -> tuple[tuple[str, ...], tuple[str, ...]]:
        """Advance to ``round_index`` and return ``(joined, left)``.

        Round 0 never churns: every workload starts from the full deployment,
        so the first round's transcript anchors the scenario.
        """
        churn = self._spec.churn
        if round_index == 0 or churn.is_static and churn.join_probability == 1.0:
            return ((), ())
        rng = make_rng(
            self._spec.seed, "workload-churn", self._spec.name, round_index
        )
        joined: list[str] = []
        left: list[str] = []
        active = set(self._active)
        for station_id in self._all:
            draw = float(rng.random())
            if station_id in active:
                if draw < churn.leave_probability:
                    left.append(station_id)
            elif draw < churn.join_probability:
                joined.append(station_id)
        survivors = [s for s in self._active if s not in set(left)]
        # Keep at least min_active stations up by reviving leavers, in
        # sorted station order (the order `left` was collected in).
        while len(survivors) + len(joined) < churn.min_active and left:
            revived = left.pop(0)
            survivors = [s for s in self._all if s in set(survivors) | {revived}]
        self._active = sorted(set(survivors) | set(joined))
        return (tuple(joined), tuple(left))


class _QuerySampler:
    """Seeded, optionally Zipf-skewed exemplar sampling.

    The hot-set *order* is drawn once from the workload identity (a seeded
    permutation of the sorted non-decoy user pool); per-round draws then pick
    ranks with weight ``1 / (rank + 1)^s``.  ``s = 0`` is uniform.
    """

    def __init__(self, spec: WorkloadSpec, dataset: DistributedDataset) -> None:
        self._spec = spec
        self._dataset = dataset
        pool = [
            user_id
            for user_id in sorted(dataset.user_ids)
            if not dataset.profile(user_id).is_decoy
        ]
        mix = spec.mix
        if mix.categories is not None:
            wanted = set(mix.categories)
            unknown = wanted - {dataset.category_of(u) for u in pool}
            if unknown:
                raise ValueError(
                    f"query mix names unknown categories {sorted(unknown)!r}"
                )
            pool = [u for u in pool if dataset.category_of(u) in wanted]
        if not pool:
            raise ValueError("query mix selects no exemplar users")
        order_rng = make_rng(spec.seed, "workload-hotset", spec.name)
        order = order_rng.permutation(len(pool))
        self._pool = [pool[int(index)] for index in order]
        if mix.zipf_s > 0.0:
            weights = [1.0 / float(rank + 1) ** mix.zipf_s for rank in range(len(pool))]
            total = sum(weights)
            self._weights = [w / total for w in weights]
        else:
            self._weights = None

    def sample(self, round_index: int, count: int) -> list[QueryPattern]:
        """The round's query batch: ``count`` exemplar-derived query patterns."""
        rng = make_rng(
            self._spec.seed, "workload-queries", self._spec.name, round_index
        )
        indices = rng.choice(
            len(self._pool), size=count, replace=True, p=self._weights
        )
        queries = []
        for position, index in enumerate(indices):
            user_id = self._pool[int(index)]
            queries.append(
                QueryPattern(
                    f"q{round_index:03d}-{position:03d}-{user_id}",
                    self._dataset.local_patterns_for(user_id),
                )
            )
        return queries


def _build_environment(spec: WorkloadSpec, bit_backend: str):
    """Dataset + config + protocol shared by both drives."""
    dataset = build_dataset(
        DatasetSpec(
            users_per_category=spec.users_per_category,
            station_count=spec.station_count,
            days=spec.days,
            intervals_per_day=spec.intervals_per_day,
            noise_level=spec.noise_level,
            seed=derive_seed(spec.seed, "workload-dataset", spec.name),
        )
    )
    config = DIMatchingConfig(
        epsilon=spec.epsilon,
        bit_backend=bit_backend,
        fault_profile=spec.fault_profile,
    )
    protocol = make_protocols(config, float(spec.epsilon), (spec.method,))[0]
    return dataset, config, protocol


def run_workload(
    spec: WorkloadSpec,
    *,
    drive: str = "simulation",
    executor: str | None = None,
    shard_count: int | None = None,
    bit_backend: str = "auto",
    network_config: NetworkConfig | None = None,
) -> WorkloadResult:
    """Compile ``spec`` into a multi-round drive and run it to completion.

    ``executor`` / ``shard_count`` / ``bit_backend`` are local scale knobs:
    like everywhere else in the system they change wall-clock only, never the
    results, byte counts or the replayed transcript.
    """
    if drive not in WORKLOAD_DRIVE_CHOICES:
        raise ValueError(
            f"drive must be one of {WORKLOAD_DRIVE_CHOICES}, got {drive!r}"
        )
    dataset, config, protocol = _build_environment(spec, bit_backend)
    sampler = _QuerySampler(spec, dataset)
    aggregator = WorkloadAggregator(
        scenario=spec.name,
        seed=spec.seed,
        drive=drive,
        method=spec.method,
        fault_profile=spec.fault_profile,
        # The session drive matches in-process and never constructs an
        # executor runner; recording the knob there would misstate the run.
        executor=(executor or "serial") if drive == "simulation" else "serial",
    )
    if drive == "simulation":
        _drive_simulation(
            spec, dataset, protocol, sampler, aggregator,
            executor=executor, shard_count=shard_count,
            network_config=network_config,
        )
    else:
        _drive_session(
            spec, dataset, config, protocol, sampler, aggregator,
            network_config=network_config,
        )
    return aggregator.finish()


def _drive_simulation(
    spec: WorkloadSpec,
    dataset: DistributedDataset,
    protocol: "MatchingProtocol",
    sampler: _QuerySampler,
    aggregator: WorkloadAggregator,
    executor: str | None,
    shard_count: int | None,
    network_config: NetworkConfig | None,
) -> None:
    """Full per-round simulation rounds over churned station subsets."""
    with DistributedSimulation(
        dataset,
        network_config,
        executor=executor,
        shard_count=shard_count,
        fault_plan=spec.fault_profile,
        allow_partial=spec.allow_partial,
    ) as simulation:
        churn = _ChurnState(spec, [s.node_id for s in simulation.stations])
        queries: list[QueryPattern] = []
        truth: frozenset[str] = frozenset()
        for round_index in range(spec.rounds):
            joined, left = churn.step(round_index)
            refreshed = spec.arrival.refreshes_at(round_index)
            if refreshed:
                queries = sampler.sample(
                    round_index, spec.arrival.count_at(round_index)
                )
                # Ground truth is a pure function of the batch: recompute
                # only on rotation, not per round.
                truth = ground_truth_users(dataset, queries, float(spec.epsilon))
            outcome = simulation.run(
                protocol,
                queries,
                k=len(truth),
                station_ids=churn.active,
                net_seed=_round_net_seed(spec, round_index),
            )
            metrics = evaluate_retrieval(tuple(outcome.retrieved_user_ids), truth)
            costs = outcome.costs
            aggregator.add_round(
                RoundMetrics(
                    round_index=round_index,
                    query_count=len(queries),
                    active_station_count=len(churn.active),
                    joined=joined,
                    left=left,
                    downlink_bytes=costs.downlink_bytes,
                    uplink_bytes=costs.uplink_bytes,
                    precision=metrics.precision,
                    recall=metrics.recall,
                    latency_s=costs.transmission_time_s,
                    goodput_fraction=costs.goodput_fraction,
                    retransmit_count=costs.retransmit_count,
                    lost_station_count=costs.lost_station_count,
                    batch_refreshed=refreshed,
                    compute_time_s=costs.computation_time_s,
                ),
                outcome.transcript,
            )


def _drive_session(
    spec: WorkloadSpec,
    dataset: DistributedDataset,
    config: DIMatchingConfig,
    protocol: "MatchingProtocol",
    sampler: _QuerySampler,
    aggregator: WorkloadAggregator,
    network_config: NetworkConfig | None,
) -> None:
    """One continuous session across all rounds, shipping only deltas.

    Downlink is charged when the artifact changes (batch rotation — the
    re-encoded artifact's wire size once per active station) and for every
    station that joins mid-campaign (it must receive the current artifact
    before it can match).  Uplink is the real wire bytes of the round's delta
    shipment through the seeded transport, and the ranking the round reports
    is computed from the reports the *center actually decoded off the wire* —
    an undelivered delta (the station stays dirty and retries next round)
    leaves the center serving the previous state, exactly like a real
    deployment, and is visible in the round's precision/recall.
    """
    churn = _ChurnState(
        spec,
        [
            station_id
            for station_id in dataset.station_ids
            if len(dataset.local_patterns_at(station_id)) > 0
        ],
    )
    center = DataCenterNode()
    session: ContinuousMatchingSession | None = None
    queries: list[QueryPattern] = []
    truth: frozenset[str] = frozenset()
    artifact_bytes = 0
    # The center's view: the last delta each station *delivered* (stations
    # administratively removed by churn are dropped from it).
    delivered_reports: dict[str, list[object]] = {}
    for round_index in range(spec.rounds):
        joined, left = churn.step(round_index)
        refreshed = spec.arrival.refreshes_at(round_index)
        if refreshed:
            queries = sampler.sample(round_index, spec.arrival.count_at(round_index))
            truth = ground_truth_users(dataset, queries, float(spec.epsilon))
        if session is None:
            session = ContinuousMatchingSession(protocol, queries)
            artifact_bytes = _artifact_size_bytes(session.artifact)
            for station_id in churn.active:
                session.update_station(
                    station_id, dataset.local_patterns_at(station_id)
                )
        else:
            # Departures first, so a simultaneous rotation never re-matches
            # stations that are leaving this round anyway.
            for station_id in left:
                session.remove_station(station_id)
                delivered_reports.pop(station_id, None)
            if refreshed:
                session.replace_queries(queries)
                artifact_bytes = _artifact_size_bytes(session.artifact)
            for station_id in joined:
                session.update_station(
                    station_id, dataset.local_patterns_at(station_id)
                )
        if refreshed:
            downlink_bytes = artifact_bytes * len(churn.active)
        else:
            downlink_bytes = artifact_bytes * len(joined)
        network = SimulatedNetwork(
            network_config or NetworkConfig(),
            fault_plan=resolve_fault_plan(spec.fault_profile),
            seed=_round_net_seed(spec, round_index),
            decode_backend=config.bit_backend,
            allow_partial=spec.allow_partial,
        )
        center.clear_inbox()
        session.ship_deltas(network, center)
        for sender, reports in center.reports_by_sender().items():
            delivered_reports[sender] = list(reports)
        results = protocol.aggregate(
            [report for reports in delivered_reports.values() for report in reports],
            len(truth),
        )
        metrics = evaluate_retrieval(tuple(results.user_ids()), truth)
        stats = network.frame_stats()
        aggregator.add_round(
            RoundMetrics(
                round_index=round_index,
                query_count=len(queries),
                active_station_count=len(churn.active),
                joined=joined,
                left=left,
                downlink_bytes=downlink_bytes,
                uplink_bytes=network.uplink_bytes,
                precision=metrics.precision,
                recall=metrics.recall,
                latency_s=network.transmission_time_s(),
                goodput_fraction=stats.goodput_fraction,
                retransmit_count=stats.retransmit_count,
                lost_station_count=len(session.dirty_station_ids),
                batch_refreshed=refreshed,
            ),
            network.transcript,
        )
