"""The workload engine: compile a :class:`WorkloadSpec` into a multi-round drive.

The engine is a *traffic generator* over the :class:`repro.cluster.Cluster`
facade: it compiles the spec into a :class:`~repro.cluster.spec.ClusterSpec`
(:meth:`ClusterSpec.from_workload`), opens one
:class:`~repro.cluster.facade.ClusterSession` in the requested drive style and
feeds it churn, query rotations and per-round seeds.  Two drive modes
(``repro.core.config.WORKLOAD_DRIVE_CHOICES``):

* ``simulation`` — a ``mode="rounds"`` session: every step is a full wire
  round (encode → broadcast to the round's *active* stations → sharded
  matching → reliable uplink), churn expressed as per-step
  ``RoundOptions.station_ids`` subsets.  Costs are the real per-round wire
  bytes.
* ``session`` — a ``mode="deltas"`` session: one continuous matching session
  spans all rounds, query-batch rotations re-encode the artifact, churned
  stations are published/retired incrementally, and only the dirty stations'
  deltas ship through the seeded transport.  This is the steady-state serving
  model, where per-round traffic is the *delta*, not the whole round.
* ``open`` — the open-system mode: instead of a closed loop where each round
  fully drains before the next starts, query batches are *admitted* by
  arrival time on a virtual clock, drawn from the spec's
  :class:`~repro.workloads.spec.OfferedLoad` (target QPS × ramp-phase
  multipliers, Poisson or scheduled inter-arrival gaps).  Admissions feed a
  single-server queue over the same ``mode="rounds"`` session: when service
  time (the round's virtual transmission time) exceeds the inter-arrival
  gap, queueing delay accrues into ``latency_s`` — saturation degrades
  latency gracefully instead of erroring.

Determinism: every stochastic decision of a run — the synthetic city, each
round's query sample, the churn draws and the transport's fault schedule —
derives from ``(spec.name, spec.seed)`` via :func:`repro.utils.rng.derive_seed`
with a distinct label per process and round.  The resulting
:meth:`~repro.workloads.result.WorkloadResult.transcript_bytes` is therefore
byte-identical across runs and across station executors; the replay suite
under ``tests/workloads/`` pins this for every registered scenario, and pins
it against the pre-facade engine through committed golden digests.
"""

from __future__ import annotations

from typing import Sequence

from repro.cluster.facade import Cluster, ClusterSession
from repro.cluster.spec import ClusterSpec
from repro.core.config import WORKLOAD_DRIVE_CHOICES
from repro.datagen.workload import DistributedDataset, build_dataset
from repro.distributed.network import NetworkConfig
from repro.distributed.simulator import RoundOptions
from repro.evaluation.experiments import ground_truth_users
from repro.evaluation.metrics import evaluate_retrieval
from repro.timeseries.query import QueryPattern
from repro.utils.rng import derive_seed, make_rng
from repro.workloads.result import RoundMetrics, WorkloadAggregator, WorkloadResult
from repro.workloads.spec import RampPhase, WorkloadSpec


def _round_net_seed(spec: WorkloadSpec, round_index: int) -> int:
    """The transport seed of one round — pure function of ``(name, seed, round)``."""
    return derive_seed(spec.seed, "workload-net", spec.name, round_index)


class _ChurnState:
    """Deterministic station membership across rounds.

    Stations are iterated in sorted order and every draw comes from a
    per-round RNG derived from the workload identity, so the membership
    schedule is independent of dict ordering, executors and call timing.
    """

    def __init__(self, spec: WorkloadSpec, station_ids: Sequence[str]) -> None:
        self._spec = spec
        self._all = sorted(str(station_id) for station_id in station_ids)
        self._active = list(self._all)

    @property
    def active(self) -> tuple[str, ...]:
        """The currently active stations, in sorted order."""
        return tuple(self._active)

    def step(self, round_index: int) -> tuple[tuple[str, ...], tuple[str, ...]]:
        """Advance to ``round_index`` and return ``(joined, left)``.

        Round 0 never churns: every workload starts from the full deployment,
        so the first round's transcript anchors the scenario.
        """
        churn = self._spec.churn
        if round_index == 0 or churn.is_static and churn.join_probability == 1.0:
            return ((), ())
        rng = make_rng(
            self._spec.seed, "workload-churn", self._spec.name, round_index
        )
        joined: list[str] = []
        left: list[str] = []
        active = set(self._active)
        for station_id in self._all:
            draw = float(rng.random())
            if station_id in active:
                if draw < churn.leave_probability:
                    left.append(station_id)
            elif draw < churn.join_probability:
                joined.append(station_id)
        survivors = [s for s in self._active if s not in set(left)]
        # Keep at least min_active stations up by reviving leavers, in
        # sorted station order (the order `left` was collected in).
        while len(survivors) + len(joined) < churn.min_active and left:
            revived = left.pop(0)
            survivors = [s for s in self._all if s in set(survivors) | {revived}]
        self._active = sorted(set(survivors) | set(joined))
        return (tuple(joined), tuple(left))


class _QuerySampler:
    """Seeded, optionally Zipf-skewed exemplar sampling.

    The hot-set *order* is drawn once from the workload identity (a seeded
    permutation of the sorted non-decoy user pool); per-round draws then pick
    ranks with weight ``1 / (rank + 1)^s``.  ``s = 0`` is uniform.
    """

    def __init__(self, spec: WorkloadSpec, dataset: DistributedDataset) -> None:
        self._spec = spec
        self._dataset = dataset
        pool = [
            user_id
            for user_id in sorted(dataset.user_ids)
            if not dataset.profile(user_id).is_decoy
        ]
        mix = spec.mix
        if mix.categories is not None:
            wanted = set(mix.categories)
            unknown = wanted - {dataset.category_of(u) for u in pool}
            if unknown:
                raise ValueError(
                    f"query mix names unknown categories {sorted(unknown)!r}"
                )
            pool = [u for u in pool if dataset.category_of(u) in wanted]
        if not pool:
            raise ValueError("query mix selects no exemplar users")
        order_rng = make_rng(spec.seed, "workload-hotset", spec.name)
        order = order_rng.permutation(len(pool))
        self._pool = [pool[int(index)] for index in order]
        if mix.zipf_s > 0.0:
            weights = [1.0 / float(rank + 1) ** mix.zipf_s for rank in range(len(pool))]
            total = sum(weights)
            self._weights = [w / total for w in weights]
        else:
            self._weights = None

    def sample(self, round_index: int, count: int) -> list[QueryPattern]:
        """The round's query batch: ``count`` exemplar-derived query patterns."""
        rng = make_rng(
            self._spec.seed, "workload-queries", self._spec.name, round_index
        )
        indices = rng.choice(
            len(self._pool), size=count, replace=True, p=self._weights
        )
        queries = []
        for position, index in enumerate(indices):
            user_id = self._pool[int(index)]
            queries.append(
                QueryPattern(
                    f"q{round_index:03d}-{position:03d}-{user_id}",
                    self._dataset.local_patterns_for(user_id),
                )
            )
        return queries


class _EagerProvider:
    """The materialized-dataset data plane of a workload run.

    Thin glue over the classic pieces — :class:`_QuerySampler`,
    :func:`ground_truth_users` and the dataset's pattern accessors — kept
    byte-identical to the pre-:class:`StationSource` engine so every golden
    transcript replays unchanged.
    """

    def __init__(self, spec: WorkloadSpec, dataset: DistributedDataset) -> None:
        self._spec = spec
        self._dataset = dataset
        self._sampler = _QuerySampler(spec, dataset)

    def sample(self, round_index: int, count: int) -> list[QueryPattern]:
        return self._sampler.sample(round_index, count)

    def truth(self, queries: Sequence[QueryPattern]) -> frozenset[str]:
        return frozenset(
            ground_truth_users(self._dataset, queries, float(self._spec.epsilon))
        )

    def patterns_at(self, station_id: str):
        return self._dataset.local_patterns_at(station_id)

    def round_station_ids(
        self, round_index: int, active: tuple[str, ...]
    ) -> tuple[str, ...]:
        """Eager rounds touch every churn-active station."""
        return active

    def observe(self) -> None:
        """Nothing to track: the whole city is resident by construction."""

    def stats(self) -> "dict[str, object] | None":
        return None


class _SourceProvider:
    """The streaming-source data plane: bounded residency at any declared scale.

    Queries are uniform draws over the source's exemplar space (an O(1)
    index draw plus an O(fragments) derivation — never a population scan),
    ground truth is the source's own :meth:`StationSource.ground_truth`, and
    ``stations_per_round`` windows each round's touch set so round cost
    scales with the window, not the declared city.  ``observe``/:meth:`stats`
    track the peak resident station batches and eviction traffic the soak
    benchmark commits as headline metrics.
    """

    def __init__(self, spec: WorkloadSpec, source) -> None:
        self._spec = spec
        self._source = source
        source_spec = spec.effective_source()
        self._window = source_spec.stations_per_round
        self._max_resident = source_spec.max_resident
        self._peak_resident = 0
        self.observe()

    def sample(self, round_index: int, count: int) -> list[QueryPattern]:
        rng = make_rng(
            self._spec.seed, "workload-queries", self._spec.name, round_index
        )
        indices = rng.integers(0, self._source.exemplar_count, size=count)
        queries = []
        for position, index in enumerate(indices):
            exemplar = self._source.exemplar_query(int(index))
            # Exemplar ids are "q-<user>"; rebrand with the engine's round
            # coordinates, the same shape the eager sampler emits.
            queries.append(
                QueryPattern(
                    f"q{round_index:03d}-{position:03d}-{exemplar.query_id[2:]}",
                    exemplar.local_patterns,
                )
            )
        return queries

    def truth(self, queries: Sequence[QueryPattern]) -> frozenset[str]:
        return self._source.ground_truth(queries, float(self._spec.epsilon))

    def patterns_at(self, station_id: str):
        return self._source.local_patterns_at(station_id)

    def round_station_ids(
        self, round_index: int, active: tuple[str, ...]
    ) -> tuple[str, ...]:
        """A seeded ``stations_per_round`` window of the active set."""
        if self._window is None or self._window >= len(active):
            return active
        rng = make_rng(self._spec.seed, "workload-touch", self._spec.name, round_index)
        chosen = rng.choice(len(active), size=self._window, replace=False)
        return tuple(sorted(active[int(position)] for position in chosen))

    def observe(self) -> None:
        """Record the residency high-water mark after a step."""
        self._peak_resident = max(self._peak_resident, self._source.resident_count)

    def stats(self) -> "dict[str, object] | None":
        return {
            "kind": "streaming",
            "declared_users": int(self._source.user_count),
            "station_count": len(self._source.station_ids),
            "max_resident": int(self._max_resident),
            "stations_per_round": self._window,
            "peak_resident": int(self._peak_resident),
            "built": int(getattr(self._source, "built_count", self._source.resident_count)),
            "evictions": int(getattr(self._source, "eviction_count", 0)),
        }


def run_workload(
    spec: WorkloadSpec,
    *,
    drive: str = "simulation",
    executor: str | None = None,
    shard_count: int | None = None,
    bit_backend: str = "auto",
    network_config: NetworkConfig | None = None,
    transport: str = "sim",
) -> WorkloadResult:
    """Compile ``spec`` into a multi-round facade drive and run it to completion.

    ``executor`` / ``shard_count`` / ``bit_backend`` are local scale knobs:
    like everywhere else in the system they change wall-clock only, never the
    results, byte counts or the replayed transcript.  ``transport`` selects
    the backhaul backend (``repro.core.config.TRANSPORT_CHOICES``): ``"sim"``
    replays on the deterministic simulator, ``"tcp"`` drives the same rounds
    over real localhost sockets with station worker processes.  Fault-free
    runs produce identical results and byte counts on both; wire latencies
    become wall-clock measurements on ``"tcp"``.
    """
    if drive not in WORKLOAD_DRIVE_CHOICES:
        raise ValueError(
            f"drive must be one of {WORKLOAD_DRIVE_CHOICES}, got {drive!r}"
        )
    if drive == "open" and spec.offered is None:
        raise ValueError(
            "the open drive needs an arrival model: set WorkloadSpec.offered "
            "to an OfferedLoad (target QPS + ramp phases)"
        )
    if drive == "open" and spec.tenants:
        raise ValueError(
            "tenant multiplexing is a closed-loop feature: the open drive "
            "admits one arrival stream, so drop tenants or use the "
            "simulation/session drives"
        )
    cluster_spec = ClusterSpec.from_workload(
        spec,
        executor=executor,
        shard_count=shard_count,
        bit_backend=bit_backend,
        network_config=network_config,
        transport=transport,
    )
    if cluster_spec.source is not None:
        # Streaming city: the source *is* the dataset boundary — batches are
        # derived on demand and the whole population is never materialized.
        source = cluster_spec.source.build()
        provider: _EagerProvider | _SourceProvider = _SourceProvider(spec, source)
        cluster_cm = Cluster(cluster_spec, source=source)
    else:
        dataset = build_dataset(cluster_spec.dataset)
        provider = _EagerProvider(spec, dataset)
        cluster_cm = Cluster(cluster_spec, dataset=dataset)
    aggregator = WorkloadAggregator(
        scenario=spec.name,
        seed=spec.seed,
        drive=drive,
        method=spec.method,
        fault_profile=spec.fault_profile,
        # The session drive matches in-process and never constructs an
        # executor runner; recording the knob there would misstate the run.
        executor=(executor or "serial") if drive != "session" else "serial",
    )
    tenant_providers: dict[str, _EagerProvider] | None = None
    if spec.tenants:
        # Tenants require an eager source (spec validation), so ``dataset``
        # is bound.  Each tenant samples through a tenant-qualified spec name
        # — its hot-set and per-round query streams derive from labels no
        # other tenant (and no single-stream run) shares.
        tenant_providers = {
            tenant.name: _EagerProvider(
                spec.with_updates(name=f"{spec.name}#{tenant.name}", mix=tenant.mix),
                dataset,
            )
            for tenant in spec.tenants
        }
    with cluster_cm as cluster:
        session = cluster.open_session(
            mode="deltas" if drive == "session" else "rounds"
        )
        if drive == "simulation":
            if tenant_providers is not None:
                _drive_rounds_tenants(
                    spec, tenant_providers, cluster, session, aggregator
                )
            else:
                _drive_rounds(spec, provider, cluster, session, aggregator)
        elif drive == "open":
            _drive_open(spec, provider, cluster, session, aggregator)
        elif tenant_providers is not None:
            _drive_deltas_tenants(spec, tenant_providers, cluster, session, aggregator)
        else:
            _drive_deltas(spec, provider, cluster, session, aggregator)
    aggregator.set_source_stats(provider.stats())
    return aggregator.finish()


def _drive_rounds(
    spec: WorkloadSpec,
    provider: _EagerProvider | _SourceProvider,
    cluster: Cluster,
    session: ClusterSession,
    aggregator: WorkloadAggregator,
) -> None:
    """Full per-round wire rounds over churned station subsets."""
    churn = _ChurnState(spec, cluster.station_ids)
    queries: list[QueryPattern] = []
    truth: frozenset[str] = frozenset()
    for round_index in range(spec.rounds):
        joined, left = churn.step(round_index)
        refreshed = spec.arrival.refreshes_at(round_index)
        if refreshed:
            queries = provider.sample(round_index, spec.arrival.count_at(round_index))
            # Ground truth is a pure function of the batch: recompute
            # only on rotation, not per round.
            truth = provider.truth(queries)
            session.subscribe(queries)
        round_stations = provider.round_station_ids(round_index, churn.active)
        report = session.step(
            RoundOptions(
                station_ids=round_stations,
                net_seed=_round_net_seed(spec, round_index),
                k=len(truth),
            )
        )
        provider.observe()
        metrics = evaluate_retrieval(tuple(report.retrieved_user_ids), truth)
        aggregator.add_round(
            RoundMetrics(
                round_index=round_index,
                query_count=len(queries),
                active_station_count=len(round_stations),
                joined=joined,
                left=left,
                downlink_bytes=report.downlink_bytes,
                uplink_bytes=report.uplink_bytes,
                precision=metrics.precision,
                recall=metrics.recall,
                latency_s=report.latency_s,
                goodput_fraction=report.goodput_fraction,
                retransmit_count=report.retransmit_count,
                lost_station_count=report.lost_station_count,
                batch_refreshed=refreshed,
                compute_time_s=report.costs.computation_time_s,
            ),
            report.transcript,
        )


def _drive_rounds_tenants(
    spec: WorkloadSpec,
    providers: "dict[str, _EagerProvider]",
    cluster: Cluster,
    session: ClusterSession,
    aggregator: WorkloadAggregator,
) -> None:
    """Round-robin tenant multiplexing over full wire rounds.

    Every macro-round serves each tenant once, in declaration order: the
    tenant's batch is (re-)subscribed, one wire round runs, and the round's
    metrics are attributed to that tenant.  Churn advances once per
    macro-round and is reported on its first slot, so the per-tenant byte and
    query totals partition the run's totals exactly.
    """
    churn = _ChurnState(spec, cluster.station_ids)
    queries: dict[str, list[QueryPattern]] = {t.name: [] for t in spec.tenants}
    truth: dict[str, frozenset[str]] = {t.name: frozenset() for t in spec.tenants}
    round_index = 0
    for macro_round in range(spec.rounds):
        joined, left = churn.step(macro_round)
        refreshed = spec.arrival.refreshes_at(macro_round)
        for slot, tenant in enumerate(spec.tenants):
            provider = providers[tenant.name]
            if refreshed:
                queries[tenant.name] = provider.sample(
                    macro_round, spec.arrival.count_at(macro_round)
                )
                truth[tenant.name] = provider.truth(queries[tenant.name])
            # One physical deployment serves all tenants: each slot rotates
            # the artifact to its tenant's batch before the round runs.
            session.subscribe(queries[tenant.name])
            round_stations = provider.round_station_ids(macro_round, churn.active)
            report = session.step(
                RoundOptions(
                    station_ids=round_stations,
                    net_seed=_round_net_seed(spec, round_index),
                    k=len(truth[tenant.name]),
                )
            )
            metrics = evaluate_retrieval(
                tuple(report.retrieved_user_ids), truth[tenant.name]
            )
            aggregator.add_round(
                RoundMetrics(
                    round_index=round_index,
                    query_count=len(queries[tenant.name]),
                    active_station_count=len(round_stations),
                    joined=joined if slot == 0 else (),
                    left=left if slot == 0 else (),
                    downlink_bytes=report.downlink_bytes,
                    uplink_bytes=report.uplink_bytes,
                    precision=metrics.precision,
                    recall=metrics.recall,
                    latency_s=report.latency_s,
                    goodput_fraction=report.goodput_fraction,
                    retransmit_count=report.retransmit_count,
                    lost_station_count=report.lost_station_count,
                    batch_refreshed=refreshed,
                    compute_time_s=report.costs.computation_time_s,
                    tenant=tenant.name,
                ),
                report.transcript,
            )
            round_index += 1


def _drive_deltas_tenants(
    spec: WorkloadSpec,
    providers: "dict[str, _EagerProvider]",
    cluster: Cluster,
    session: ClusterSession,
    aggregator: WorkloadAggregator,
) -> None:
    """Round-robin tenant multiplexing over one continuous delta session.

    Rotating to a tenant's batch re-encodes the artifact and re-matches every
    station (all stations go dirty), so each slot ships a full delta set —
    the honest cost of serving several independent query streams through one
    shared session.  Churn is applied on each macro-round's first slot.
    """
    churn = _ChurnState(spec, cluster.station_ids)
    queries: dict[str, list[QueryPattern]] = {t.name: [] for t in spec.tenants}
    truth: dict[str, frozenset[str]] = {t.name: frozenset() for t in spec.tenants}
    started = False
    round_index = 0
    for macro_round in range(spec.rounds):
        joined, left = churn.step(macro_round)
        refreshed = spec.arrival.refreshes_at(macro_round)
        for slot, tenant in enumerate(spec.tenants):
            provider = providers[tenant.name]
            if refreshed:
                queries[tenant.name] = provider.sample(
                    macro_round, spec.arrival.count_at(macro_round)
                )
                truth[tenant.name] = provider.truth(queries[tenant.name])
            if not started:
                session.subscribe(queries[tenant.name])
                for station_id in churn.active:
                    session.publish(station_id, provider.patterns_at(station_id))
                started = True
            else:
                if slot == 0:
                    # Departures first, exactly like the single-stream drive.
                    for station_id in left:
                        session.retire(station_id)
                session.subscribe(queries[tenant.name])
                if slot == 0:
                    for station_id in joined:
                        session.publish(
                            station_id, provider.patterns_at(station_id)
                        )
            report = session.step(
                RoundOptions(
                    net_seed=_round_net_seed(spec, round_index),
                    k=len(truth[tenant.name]),
                )
            )
            metrics = evaluate_retrieval(
                tuple(report.retrieved_user_ids), truth[tenant.name]
            )
            aggregator.add_round(
                RoundMetrics(
                    round_index=round_index,
                    query_count=len(queries[tenant.name]),
                    active_station_count=len(churn.active),
                    joined=joined if slot == 0 else (),
                    left=left if slot == 0 else (),
                    downlink_bytes=report.downlink_bytes,
                    uplink_bytes=report.uplink_bytes,
                    precision=metrics.precision,
                    recall=metrics.recall,
                    latency_s=report.latency_s,
                    goodput_fraction=report.goodput_fraction,
                    retransmit_count=report.retransmit_count,
                    lost_station_count=report.lost_station_count,
                    batch_refreshed=refreshed,
                    tenant=tenant.name,
                ),
                report.transcript,
            )
            round_index += 1


def _phase_arrivals(
    spec: WorkloadSpec,
    phase: RampPhase,
    phase_start: float,
    budget: int,
) -> list[float]:
    """Virtual arrival times falling inside ``phase``, at most ``budget`` many.

    Every gap is a pure function of ``(spec.name, spec.seed, phase.label)``:
    the per-phase RNG stream is derived once and consumed in order, so the
    schedule is identical across runs, executors and bit backends.  A
    ``scheduled`` process emits exact ``1/rate`` gaps; ``poisson`` draws
    exponential gaps at the same mean.
    """
    offered = spec.offered
    assert offered is not None
    rate = offered.rate_during(phase)
    if rate <= 0.0 or budget <= 0:
        return []
    phase_end = phase_start + float(phase.duration_s)
    rng = make_rng(spec.seed, "workload-arrivals", spec.name, phase.label)
    arrivals: list[float] = []
    clock = phase_start
    mean_gap = 1.0 / rate
    while len(arrivals) < budget:
        if offered.process == "poisson":
            gap = float(rng.exponential(mean_gap))
        else:
            gap = mean_gap
        clock += gap
        if clock >= phase_end:
            break
        arrivals.append(clock)
    return arrivals


def _drive_open(
    spec: WorkloadSpec,
    provider: _EagerProvider | _SourceProvider,
    cluster: Cluster,
    session: ClusterSession,
    aggregator: WorkloadAggregator,
) -> None:
    """Rate-driven admissions through a single-server virtual-clock queue.

    Each admitted query batch runs one full wire round (the same
    ``mode="rounds"`` step the simulation drive uses); its *service time* is
    the round's virtual transmission time.  The queue is work-conserving
    single-server: an arrival starts at ``max(arrival, busy_until)``, so once
    service time exceeds the inter-arrival gap the excess accrues as
    ``queue_delay_s`` and ``latency_s = queue_delay + service`` degrades
    gracefully — the saturation signal this drive exists to measure.
    ``spec.rounds`` is ignored; the arrival schedule (phase durations, rates
    and ``max_arrivals``) decides how many rounds run.
    """
    offered = spec.offered
    assert offered is not None
    churn = _ChurnState(spec, cluster.station_ids)
    queries: list[QueryPattern] = []
    truth: frozenset[str] = frozenset()
    busy_until = 0.0
    arrival_index = 0
    phase_start = 0.0
    for phase in offered.ramp:
        rate = offered.rate_during(phase)
        aggregator.begin_phase(
            phase.label, rate, float(phase.duration_s), start_s=phase_start
        )
        arrivals = _phase_arrivals(
            spec, phase, phase_start, offered.max_arrivals - arrival_index
        )
        phase_start += float(phase.duration_s)
        for arrival_s in arrivals:
            joined, left = churn.step(arrival_index)
            refreshed = spec.arrival.refreshes_at(arrival_index)
            if refreshed:
                queries = provider.sample(
                    arrival_index, spec.arrival.count_at(arrival_index)
                )
                truth = provider.truth(queries)
                session.subscribe(queries)
            round_stations = provider.round_station_ids(arrival_index, churn.active)
            report = session.step(
                RoundOptions(
                    station_ids=round_stations,
                    net_seed=_round_net_seed(spec, arrival_index),
                    k=len(truth),
                )
            )
            provider.observe()
            service_s = report.latency_s
            start_s = max(arrival_s, busy_until)
            queue_delay_s = start_s - arrival_s
            busy_until = start_s + service_s
            metrics = evaluate_retrieval(tuple(report.retrieved_user_ids), truth)
            aggregator.add_round(
                RoundMetrics(
                    round_index=arrival_index,
                    query_count=len(queries),
                    active_station_count=len(round_stations),
                    joined=joined,
                    left=left,
                    downlink_bytes=report.downlink_bytes,
                    uplink_bytes=report.uplink_bytes,
                    precision=metrics.precision,
                    recall=metrics.recall,
                    latency_s=queue_delay_s + service_s,
                    goodput_fraction=report.goodput_fraction,
                    retransmit_count=report.retransmit_count,
                    lost_station_count=report.lost_station_count,
                    batch_refreshed=refreshed,
                    compute_time_s=report.costs.computation_time_s,
                    phase=phase.label,
                    arrival_s=arrival_s,
                    queue_delay_s=queue_delay_s,
                ),
                report.transcript,
            )
            arrival_index += 1
    if arrival_index == 0:
        raise ValueError(
            "the offered load admitted no arrivals: every ramp phase is "
            "either zero-rate or shorter than one inter-arrival gap"
        )


def _drive_deltas(
    spec: WorkloadSpec,
    provider: _EagerProvider | _SourceProvider,
    cluster: Cluster,
    session: ClusterSession,
    aggregator: WorkloadAggregator,
) -> None:
    """One continuous delta session across all rounds.

    Downlink is charged when the artifact changes (batch rotation — the
    re-encoded artifact's wire size once per active station) and for every
    station that joins mid-campaign; uplink is the real wire bytes of the
    round's delta shipment.  The facade session owns that accounting and the
    center-side "last delivered state" view — an undelivered delta leaves the
    center serving the previous state, visible in the round's
    precision/recall.
    """
    churn = _ChurnState(spec, cluster.station_ids)
    queries: list[QueryPattern] = []
    truth: frozenset[str] = frozenset()
    started = False
    for round_index in range(spec.rounds):
        joined, left = churn.step(round_index)
        refreshed = spec.arrival.refreshes_at(round_index)
        if refreshed:
            queries = provider.sample(round_index, spec.arrival.count_at(round_index))
            truth = provider.truth(queries)
        if not started:
            session.subscribe(queries)
            for station_id in churn.active:
                session.publish(station_id, provider.patterns_at(station_id))
            started = True
        else:
            # Departures first, so a simultaneous rotation never re-matches
            # stations that are leaving this round anyway.
            for station_id in left:
                session.retire(station_id)
            if refreshed:
                session.subscribe(queries)
            for station_id in joined:
                session.publish(station_id, provider.patterns_at(station_id))
        report = session.step(
            RoundOptions(net_seed=_round_net_seed(spec, round_index), k=len(truth))
        )
        provider.observe()
        metrics = evaluate_retrieval(tuple(report.retrieved_user_ids), truth)
        aggregator.add_round(
            RoundMetrics(
                round_index=round_index,
                query_count=len(queries),
                active_station_count=len(churn.active),
                joined=joined,
                left=left,
                downlink_bytes=report.downlink_bytes,
                uplink_bytes=report.uplink_bytes,
                precision=metrics.precision,
                recall=metrics.recall,
                latency_s=report.latency_s,
                goodput_fraction=report.goodput_fraction,
                retransmit_count=report.retransmit_count,
                lost_station_count=report.lost_station_count,
                batch_refreshed=refreshed,
            ),
            report.transcript,
        )
