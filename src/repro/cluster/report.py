"""Typed results of facade-driven rounds, and the cluster snapshot type.

A :class:`RoundReport` is the one report shape both drive styles return: a
full wire round (:meth:`repro.cluster.Cluster.round`, ``mode="round"``) and an
incremental delta shipment of an open session
(:meth:`repro.cluster.ClusterSession.step`, ``mode="delta"``).  Callers that
only consume the common surface (ranking, byte counts, reliability counters,
transcript) never need to know which drive produced it; the full-round extras
(the complete :class:`~repro.distributed.metrics.CostReport`) ride along in
``costs`` when available.

A :class:`ClusterSnapshot` freezes the facade's mutable state — the
subscription, the published station patterns, the round counter and the
recorded transcripts — so a cluster can be restored to an earlier point
(warm starts, mid-workload failover) and continue with a byte-identical
transcript, which ``tests/cluster/test_snapshot.py`` pins property-style.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.protocol import RankedResults
from repro.distributed.events import TranscriptEntry, transcript_to_bytes
from repro.distributed.metrics import CostReport
from repro.timeseries.pattern import PatternSet
from repro.timeseries.query import QueryPattern

#: The two drive styles a report can come from.
ROUND_MODES = ("round", "delta")


@dataclass(frozen=True)
class RoundReport:
    """Everything one facade-driven round reports upward."""

    round_index: int
    #: ``"round"`` for a full wire round, ``"delta"`` for a session shipment.
    mode: str
    results: RankedResults
    query_count: int
    active_station_count: int
    downlink_bytes: int
    uplink_bytes: int
    #: The round's *virtual* transmission time (deterministic under the seed
    #: contract) — never measured wall-clock.
    latency_s: float
    goodput_fraction: float
    retransmit_count: int
    #: Full rounds: stations that timed out of the round.  Delta shipments:
    #: stations still dirty after the shipment (they retry next step).
    lost_station_count: int
    transcript: tuple[TranscriptEntry, ...] = field(repr=False, default=())
    #: The complete cost report of a full wire round (``None`` in delta mode,
    #: where only the delta's transport costs exist).
    costs: CostReport | None = None
    #: Delta mode: stations whose shipment was delivered this step.
    delivered_station_ids: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.mode not in ROUND_MODES:
            raise ValueError(f"mode must be one of {ROUND_MODES}, got {self.mode!r}")

    @property
    def total_bytes(self) -> int:
        """Downlink plus uplink bytes of the round."""
        return self.downlink_bytes + self.uplink_bytes

    @property
    def retrieved_user_ids(self) -> list[str]:
        """Retrieved user ids in rank order."""
        return self.results.user_ids()

    def transcript_bytes(self) -> bytes:
        """Canonical byte rendering of the round's event transcript."""
        return transcript_to_bytes(self.transcript)


@dataclass(frozen=True)
class ClusterSnapshot:
    """Frozen restorable state of one :class:`~repro.cluster.Cluster`.

    Pattern sets and query patterns are immutable value objects, so the
    snapshot shares them structurally; restoring installs the references and
    rebuilds the station nodes around them.
    """

    queries: tuple[QueryPattern, ...]
    #: ``(station_id, published patterns)`` in dataset station order.  For a
    #: lazily served (source-backed) cluster only the explicitly *pinned*
    #: stations appear — transient batches are re-derivable from the source.
    patterns: tuple[tuple[str, PatternSet], ...]
    round_index: int
    transcripts: tuple[bytes, ...] = field(repr=False, default=())
    #: Source-backed clusters: stations withdrawn via ``retire`` (the source
    #: still declares them, but rounds must not serve them after restore).
    withdrawn: tuple[str, ...] = ()

    @property
    def station_count(self) -> int:
        """Number of pattern-bearing stations captured."""
        return len(self.patterns)
