"""Typed, validated specification of one cluster deployment.

A :class:`ClusterSpec` is everything needed to stand up the distributed
matching system behind one :class:`~repro.cluster.facade.Cluster` facade: the
synthetic city to serve (:class:`~repro.datagen.workload.DatasetSpec`), the
matching protocol the data center runs (:class:`ProtocolSpec`), the simulated
backhaul (:class:`TransportSpec`), the station-execution backend
(:class:`ExecutorSpec`) and the seeded fault environment (:class:`FaultSpec`).
Like :class:`~repro.workloads.spec.WorkloadSpec` every field is validated at
construction with :class:`~repro.core.exceptions.ConfigurationError`, so a
mis-built deployment fails before any traffic moves.

Sub-spec fields that default to ``None`` mean *defer to the protocol's own*
:class:`~repro.core.config.DIMatchingConfig` — the same resolution order the
legacy ``DistributedSimulation`` constructor used, so specs compiled from
older call sites behave identically.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING

from repro.core.config import (
    DIMatchingConfig,
    EXECUTOR_CHOICES,
    FAULT_PROFILE_CHOICES,
    TRANSPORT_CHOICES,
)
from repro.core.exceptions import ConfigurationError
from repro.datagen.source import SourceSpec
from repro.datagen.workload import DatasetSpec
from repro.distributed.network import NetworkConfig
from repro.topology.spec import TopologySpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.protocol import MatchingProtocol
    from repro.workloads.spec import WorkloadSpec

#: Protocols the facade can deploy, matching the evaluation vocabulary.
PROTOCOL_METHODS = ("naive", "local", "bf", "wbf")


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ConfigurationError(message)


@dataclass(frozen=True)
class ProtocolSpec:
    """Which matching protocol the deployment's data center runs.

    ``config`` carries the full :class:`DIMatchingConfig` for the filter-based
    methods; when ``None`` a default configuration with ``int(epsilon)`` is
    built.  The baselines (``naive`` / ``local``) only consume ``epsilon``.
    """

    method: str = "wbf"
    epsilon: float = 0.0
    config: DIMatchingConfig | None = None

    def __post_init__(self) -> None:
        _require(
            self.method in PROTOCOL_METHODS,
            f"method must be one of {PROTOCOL_METHODS}, got {self.method!r}",
        )
        _require(
            isinstance(self.epsilon, (int, float))
            and not isinstance(self.epsilon, bool)
            and float(self.epsilon) >= 0.0,
            f"epsilon must be >= 0, got {self.epsilon!r}",
        )
        _require(
            self.config is None or isinstance(self.config, DIMatchingConfig),
            f"config must be a DIMatchingConfig or None, got {type(self.config).__name__}",
        )

    def resolved_config(self) -> DIMatchingConfig:
        """The effective protocol configuration."""
        return self.config or DIMatchingConfig(epsilon=int(self.epsilon))

    def build(self) -> "MatchingProtocol":
        """Instantiate the configured protocol."""
        # Imported here so the spec module stays importable without pulling in
        # the whole protocol stack at definition time.
        from repro.baselines import (
            BloomFilterProtocol,
            LocalOnlyProtocol,
            NaiveProtocol,
        )
        from repro.core.dimatching import DIMatchingProtocol

        if self.method == "naive":
            return NaiveProtocol(epsilon=float(self.epsilon))
        if self.method == "local":
            return LocalOnlyProtocol(epsilon=float(self.epsilon))
        if self.method == "bf":
            return BloomFilterProtocol(self.resolved_config())
        return DIMatchingProtocol(self.resolved_config())


@dataclass(frozen=True)
class TransportSpec:
    """Backhaul backend selection plus its link/reliability parameters.

    ``transport="sim"`` runs every round through the deterministic
    event-driven :class:`~repro.distributed.network.SimulatedNetwork`;
    ``transport="tcp"`` runs the stations as real localhost worker processes
    speaking the same ``DIMW`` wire frames over asyncio sockets, with a
    byte-level fault proxy driven by the same seeded fault plan
    (:mod:`repro.distributed.transport.tcp`).  The link parameters feed both
    backends; the ``tcp_*`` knobs only apply to the real-socket backend.
    """

    bandwidth_bytes_per_s: float = 2_000_000.0
    latency_s: float = 0.02
    max_attempts: int = 8
    retransmit_timeout_s: float | None = None
    #: Which backend carries the deployment's traffic.
    transport: str = "sim"
    #: TCP only: how long to wait for a spawned station worker to register.
    tcp_connect_timeout_s: float = 20.0
    #: TCP only: stop-and-wait ack timeout; ``None`` uses the backend default
    #: (``retransmit_timeout_s`` takes precedence when set).
    tcp_ack_timeout_s: float | None = None
    #: TCP only: scale factor for real fault delays (jitter, reorder, blackout).
    tcp_delay_scale: float = 1.0

    def __post_init__(self) -> None:
        _require(
            self.transport in TRANSPORT_CHOICES,
            f"transport must be one of {TRANSPORT_CHOICES}, got {self.transport!r}",
        )
        _require(
            isinstance(self.tcp_connect_timeout_s, (int, float))
            and not isinstance(self.tcp_connect_timeout_s, bool)
            and float(self.tcp_connect_timeout_s) > 0.0,
            f"tcp_connect_timeout_s must be > 0, got {self.tcp_connect_timeout_s!r}",
        )
        _require(
            self.tcp_ack_timeout_s is None
            or (
                isinstance(self.tcp_ack_timeout_s, (int, float))
                and not isinstance(self.tcp_ack_timeout_s, bool)
                and float(self.tcp_ack_timeout_s) > 0.0
            ),
            f"tcp_ack_timeout_s must be > 0 or None, got {self.tcp_ack_timeout_s!r}",
        )
        _require(
            isinstance(self.tcp_delay_scale, (int, float))
            and not isinstance(self.tcp_delay_scale, bool)
            and float(self.tcp_delay_scale) >= 0.0,
            f"tcp_delay_scale must be >= 0, got {self.tcp_delay_scale!r}",
        )
        try:
            # NetworkConfig owns the link invariants; building one surfaces
            # any violation as the facade's ConfigurationError.
            self.network_config()
        except (TypeError, ValueError) as error:
            raise ConfigurationError(str(error)) from error

    def network_config(self) -> NetworkConfig:
        """The :class:`NetworkConfig` this spec describes."""
        return NetworkConfig(
            bandwidth_bytes_per_s=self.bandwidth_bytes_per_s,
            latency_s=self.latency_s,
            max_attempts=self.max_attempts,
            retransmit_timeout_s=self.retransmit_timeout_s,
        )

    @classmethod
    def from_network_config(
        cls, config: NetworkConfig | None, transport: str = "sim"
    ) -> "TransportSpec":
        """Lift an existing :class:`NetworkConfig` into a spec (``None`` = defaults)."""
        if config is None:
            return cls(transport=transport)
        return cls(
            bandwidth_bytes_per_s=config.bandwidth_bytes_per_s,
            latency_s=config.latency_s,
            max_attempts=config.max_attempts,
            retransmit_timeout_s=config.retransmit_timeout_s,
            transport=transport,
        )


@dataclass(frozen=True)
class ExecutorSpec:
    """Station-execution backend of the matching phase.

    ``kind=None`` / ``shard_count=None`` defer to the protocol's
    :class:`DIMatchingConfig` (``executor`` / ``shard_count``), exactly like
    the legacy simulator constructor's ``None`` defaults.
    """

    kind: str | None = None
    shard_count: int | None = None
    max_workers: int | None = None

    def __post_init__(self) -> None:
        _require(
            self.kind is None or self.kind in EXECUTOR_CHOICES,
            f"executor kind must be one of {EXECUTOR_CHOICES} or None, got {self.kind!r}",
        )
        _require(
            self.shard_count is None
            or (isinstance(self.shard_count, int) and self.shard_count >= 0),
            f"shard_count must be a non-negative integer (0 = auto) or None, "
            f"got {self.shard_count!r}",
        )
        _require(
            self.max_workers is None
            or (isinstance(self.max_workers, int) and self.max_workers >= 1),
            f"max_workers must be a positive integer or None, got {self.max_workers!r}",
        )


@dataclass(frozen=True)
class FaultSpec:
    """Seeded fault environment of the deployment's transport.

    ``profile=None`` / ``net_seed=None`` defer to the protocol's
    configuration (``fault_profile`` / ``net_seed``).  ``allow_partial`` lets
    rounds survive stations that exhaust their retransmission budget.
    """

    profile: str | None = None
    net_seed: int | None = None
    allow_partial: bool = False

    def __post_init__(self) -> None:
        _require(
            self.profile is None or self.profile in FAULT_PROFILE_CHOICES,
            f"fault profile must be one of {FAULT_PROFILE_CHOICES} or None, "
            f"got {self.profile!r}",
        )
        _require(
            self.net_seed is None
            or (isinstance(self.net_seed, int) and not isinstance(self.net_seed, bool)),
            f"net_seed must be an integer or None, got {self.net_seed!r}",
        )
        _require(
            isinstance(self.allow_partial, bool),
            f"allow_partial must be a bool, got {self.allow_partial!r}",
        )


@dataclass(frozen=True)
class ClusterSpec:
    """One complete, validated cluster deployment."""

    name: str = "cluster"
    #: Synthetic city to build; ``None`` means a pre-built dataset (or a
    #: :class:`~repro.datagen.source.StationSource`) is adopted at
    #: :class:`~repro.cluster.facade.Cluster` construction time, or that
    #: ``source`` below declares the city instead.
    dataset: DatasetSpec | None = None
    #: Declarative station source; mutually exclusive with ``dataset``.  A
    #: ``kind="streaming"`` source makes the facade serve station batches
    #: lazily under the source's resident cap instead of front-loading them.
    source: SourceSpec | None = None
    protocol: ProtocolSpec = field(default_factory=ProtocolSpec)
    transport: TransportSpec = field(default_factory=TransportSpec)
    executor: ExecutorSpec = field(default_factory=ExecutorSpec)
    faults: FaultSpec = field(default_factory=FaultSpec)
    #: Tier layout; ``None`` (and ``kind="star"``) is the paper's flat star —
    #: both drive the exact flat round engine, byte-identically.
    topology: TopologySpec | None = None

    def __post_init__(self) -> None:
        _require(
            isinstance(self.name, str) and bool(self.name),
            f"name must be a non-empty string, got {self.name!r}",
        )
        _require(
            self.dataset is None or isinstance(self.dataset, DatasetSpec),
            f"dataset must be a DatasetSpec or None, got {type(self.dataset).__name__}",
        )
        _require(
            self.source is None or isinstance(self.source, SourceSpec),
            f"source must be a SourceSpec or None, got {type(self.source).__name__}",
        )
        _require(
            self.dataset is None or self.source is None,
            "dataset and source are mutually exclusive — a deployment has "
            "exactly one city declaration",
        )
        for attribute, expected in (
            ("protocol", ProtocolSpec),
            ("transport", TransportSpec),
            ("executor", ExecutorSpec),
            ("faults", FaultSpec),
        ):
            value = getattr(self, attribute)
            _require(
                isinstance(value, expected),
                f"{attribute} must be a {expected.__name__}, got {type(value).__name__}",
            )
        _require(
            self.topology is None or isinstance(self.topology, TopologySpec),
            f"topology must be a TopologySpec or None, "
            f"got {type(self.topology).__name__}",
        )

    def with_updates(self, **changes: object) -> "ClusterSpec":
        """A copy of this spec with the given fields replaced (re-validated)."""
        return replace(self, **changes)

    @classmethod
    def from_workload(
        cls,
        workload: "WorkloadSpec",
        *,
        executor: str | None = None,
        shard_count: int | None = None,
        bit_backend: str = "auto",
        network_config: NetworkConfig | None = None,
        transport: str = "sim",
    ) -> "ClusterSpec":
        """Compile a :class:`~repro.workloads.spec.WorkloadSpec` into a deployment.

        The dataset seed is derived from the workload identity exactly like the
        pre-facade engine (``derive_seed(seed, "workload-dataset", name)``), so
        a workload driven through the compiled cluster replays the same
        byte-identical transcript.  A workload whose :class:`SourceSpec` is
        ``kind="streaming"`` compiles to a source-backed deployment (the
        facade serves station batches lazily under the source's resident
        cap); eager shapes — legacy fields or an eager source — compile to
        the exact :class:`DatasetSpec` the pre-facade engine built.
        """
        from repro.utils.rng import derive_seed

        derived_seed = derive_seed(workload.seed, "workload-dataset", workload.name)
        shape = workload.effective_source()
        dataset: DatasetSpec | None = None
        source: SourceSpec | None = None
        if shape.kind == "streaming":
            source = shape.with_updates(
                seed=shape.seed if shape.seed is not None else derived_seed
            )
        else:
            dataset = DatasetSpec(
                users_per_category=shape.users_per_category,
                station_count=shape.station_count,
                days=shape.days,
                intervals_per_day=shape.intervals_per_day,
                noise_level=shape.noise_level,
                seed=shape.seed if shape.seed is not None else derived_seed,
            )
        config = DIMatchingConfig(
            epsilon=workload.epsilon,
            bit_backend=bit_backend,
            fault_profile=workload.fault_profile,
        )
        return cls(
            name=workload.name,
            dataset=dataset,
            source=source,
            protocol=ProtocolSpec(
                method=workload.method, epsilon=float(workload.epsilon), config=config
            ),
            transport=TransportSpec.from_network_config(network_config, transport=transport),
            executor=ExecutorSpec(kind=executor, shard_count=shard_count),
            faults=FaultSpec(
                profile=workload.fault_profile, allow_partial=workload.allow_partial
            ),
            topology=workload.topology,
        )
