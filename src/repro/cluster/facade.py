"""The ``Cluster`` facade: one typed, handle-based API for the whole system.

This module owns the round engine that used to live in
``repro.distributed.simulator``: the data center encodes the query batch and
broadcasts the artifact to every participating base station (downlink), the
stations run their matching phase through a pluggable sharded executor, and
their reports travel back over the deterministic event-driven transport
(uplink) to be aggregated into the ranked top-K.  All traffic moves as
*encoded wire bytes* exposed to the round's seeded fault plan, so a surviving
round is always exactly correct and byte counts are real encoded lengths.

Around that engine the :class:`Cluster` presents the system's one public
surface:

* ``publish(station_id, patterns)`` / ``retire(station_id)`` — station-side
  data registration (the matcher cache re-primes only the changed station);
* ``subscribe(queries)`` — query-batch registration, incrementally re-encoded
  when a continuous session is open;
* ``round(...)`` — one full wire round, returning a typed
  :class:`~repro.cluster.report.RoundReport`;
* ``open_session(mode)`` — a :class:`ClusterSession` handle that unifies the
  two drive styles (full per-round wire rounds vs continuous delta shipping)
  behind one ``step()`` verb;
* ``snapshot()`` / ``restore()`` — freeze and reinstall the cluster's mutable
  state for warm starts and failover experiments;
* ``transcript_bytes()`` — the cluster-level replay token, framed exactly
  like :meth:`repro.workloads.result.WorkloadResult.transcript_bytes`;
* ``drive(protocol, queries, ...)`` — the low-level escape hatch that runs an
  arbitrary protocol through one round (what the method-comparison harness
  and the deprecated ``DistributedSimulation`` shim delegate to).

Executor choice never changes results, byte counts or the network transcript
— only measured wall-clock; the fault plan and network seed never change what
a *surviving* round computes, only what it costs.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Sequence

from repro.cluster.report import ClusterSnapshot, RoundReport
from repro.cluster.spec import ClusterSpec, TransportSpec
from repro.core.exceptions import ConfigurationError
from repro.core.protocol import MatchingProtocol
from repro.core.streaming import ContinuousMatchingSession
from repro.datagen.source import DatasetStationSource, StationSource
from repro.datagen.workload import build_dataset
from repro.distributed.basestation import BaseStationNode
from repro.distributed.datacenter import DataCenterNode
from repro.distributed.executor import ShardedStationRunner, merge_shard_outcomes
from repro.distributed.faults import FaultPlan, resolve_fault_plan
from repro.distributed.messages import Message, MessageKind, estimated_size_fallbacks
from repro.distributed.metrics import CostReport
from repro.distributed.network import NetworkConfig, SimulatedNetwork
from repro.distributed.transport.base import Transport
from repro.distributed.simulator import (
    RoundOptions,
    SimulationOutcome,
    _artifact_size_bytes,
)
from repro.timeseries.pattern import PatternSet
from repro.timeseries.query import QueryPattern
from repro.distributed.events import RoundTimeoutError
from repro.topology.router import (
    REGION_SEED_LABEL,
    TRUNK_SEED_LABEL,
    run_two_tier_round,
    ship_two_tier_deltas,
)
from repro.topology.tiers import TierMap, build_tier_map
from repro.utils.rng import derive_seed
from repro.utils.validation import require_non_empty

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.datagen.workload import DistributedDataset

#: Drive styles of :meth:`Cluster.open_session`.
SESSION_MODES = ("rounds", "deltas")


class ClusterStateError(RuntimeError):
    """A facade verb was called in a state that cannot serve it."""


class Cluster:
    """One deployed distributed matching system behind a typed facade.

    Build one from a validated :class:`~repro.cluster.spec.ClusterSpec`
    (``spec.dataset`` describes a synthetic city to build eagerly,
    ``spec.source`` a :class:`~repro.datagen.source.SourceSpec` city), or
    adopt an existing :class:`~repro.datagen.workload.DistributedDataset`
    (``dataset=``) or a live :class:`~repro.datagen.source.StationSource`
    (``source=``) — the spec's remaining sub-specs still govern protocol,
    transport, executor and faults.  A source with a resident cap
    (``resident_cap`` not ``None``, e.g.
    :class:`~repro.datagen.streaming.StreamingStationSource`) is served
    *lazily*: station batches are pulled on demand as rounds touch them and
    released back to the source's LRU afterwards, so the resident set stays
    bounded no matter how many users the source declares.  The cluster is a
    context manager; leaving the ``with`` block shuts down any executor
    worker pools.
    """

    def __init__(
        self,
        spec: ClusterSpec,
        *,
        dataset: "DistributedDataset | None" = None,
        source: StationSource | None = None,
    ) -> None:
        if not isinstance(spec, ClusterSpec):
            raise ConfigurationError(
                f"spec must be a ClusterSpec, got {type(spec).__name__}"
            )
        if dataset is not None and source is not None:
            raise ConfigurationError(
                "pass at most one of dataset= and source=; they both declare "
                "the deployment's data"
            )
        if source is None:
            if dataset is not None:
                source = DatasetStationSource(dataset)
            elif spec.source is not None:
                source = spec.source.build()
            elif spec.dataset is not None:
                source = DatasetStationSource(build_dataset(spec.dataset))
            else:
                raise ConfigurationError(
                    "the spec declares no city (dataset and source are both "
                    "None) and none was passed; one of them must describe "
                    "the deployment's data"
                )
        self._spec: ClusterSpec | None = spec
        self._protocol: MatchingProtocol | None = spec.protocol.build()
        self._setup(
            source,
            transport_spec=spec.transport,
            executor=spec.executor.kind,
            shard_count=spec.executor.shard_count,
            max_workers=spec.executor.max_workers,
            fault_plan=spec.faults.profile,
            net_seed=spec.faults.net_seed,
            allow_partial=spec.faults.allow_partial,
        )
        if spec.topology is not None and spec.topology.is_hierarchical:
            # The tier map is a pure function of spec + station order, so it
            # is built once here and never snapshotted: restore() keeps it.
            self._tier_map = build_tier_map(self._station_order, spec.topology)

    @classmethod
    def adopt(
        cls,
        dataset: "DistributedDataset | None" = None,
        network_config: NetworkConfig | None = None,
        executor: str | None = None,
        shard_count: int | None = None,
        max_workers: int | None = None,
        fault_plan: FaultPlan | str | None = None,
        net_seed: int | None = None,
        allow_partial: bool = False,
        *,
        source: StationSource | None = None,
    ) -> "Cluster":
        """Wrap a pre-built dataset (or station source) with legacy knob semantics.

        This is the compatibility spine the deprecated shims and the
        method-comparison harness stand on: every ``None`` defers to the
        driven protocol's own configuration, exactly like the old
        ``DistributedSimulation`` constructor.  ``Cluster.adopt(source=...)``
        adopts a live :class:`~repro.datagen.source.StationSource` instead —
        a capped source is served lazily, batch by batch, exactly as under a
        spec-built cluster.  No protocol is bound, so only :meth:`drive` is
        available (the typed verbs need a spec).
        """
        if (dataset is None) == (source is None):
            raise ConfigurationError(
                "adopt() needs exactly one of dataset= or source="
            )
        cluster = object.__new__(cls)
        cluster._spec = None
        cluster._protocol = None
        cluster._setup(
            source if source is not None else DatasetStationSource(dataset),
            transport_spec=TransportSpec.from_network_config(network_config),
            executor=executor,
            shard_count=shard_count,
            max_workers=max_workers,
            fault_plan=fault_plan,
            net_seed=net_seed,
            allow_partial=allow_partial,
        )
        return cluster

    def _setup(
        self,
        source: StationSource,
        *,
        transport_spec: TransportSpec,
        executor: str | None,
        shard_count: int | None,
        max_workers: int | None,
        fault_plan: FaultPlan | str | None,
        net_seed: int | None,
        allow_partial: bool,
    ) -> None:
        if not isinstance(source, StationSource):
            raise ConfigurationError(
                f"source must implement StationSource, got {type(source).__name__}"
            )
        self._source = source
        #: A capped source is served lazily: nodes materialize per round and
        #: are released afterwards, keeping residency at the source's LRU.
        self._lazy = source.resident_cap is not None
        self._station_order: tuple[str, ...] = tuple(source.station_ids)
        self._station_set = frozenset(self._station_order)
        #: Lazy mode: stations withdrawn via retire() and stations whose
        #: batches were explicitly published (pinned across rounds).
        self._withdrawn: set[str] = set()
        self._pinned: set[str] = set()
        self._last_participant_count = 0
        self._transport_spec = transport_spec
        self._network_config = transport_spec.network_config()
        self._tcp_manager: "TcpTransportManager | None" = None
        self._executor = executor
        self._shard_count = shard_count
        self._max_workers = max_workers
        self._fault_plan = fault_plan
        self._net_seed = net_seed
        self._allow_partial = bool(allow_partial)
        self._runners: dict[tuple[str, int], ShardedStationRunner] = {}
        self._center = DataCenterNode()
        self._patterns: dict[str, PatternSet] = {}
        if not self._lazy:
            for station_id in self._station_order:
                patterns = source.local_patterns_at(station_id)
                if len(patterns) > 0:
                    self._patterns[station_id] = patterns
        self._nodes: dict[str, BaseStationNode] = {
            station_id: BaseStationNode(station_id, patterns)
            for station_id, patterns in self._patterns.items()
        }
        self._queries: tuple[QueryPattern, ...] = ()
        self._round_index = 0
        self._transcripts: list[bytes] = []
        self._session: "ClusterSession | None" = None
        self._epoch = 0
        self._tier_map: TierMap | None = None

    # -- introspection ---------------------------------------------------------

    @property
    def spec(self) -> ClusterSpec | None:
        """The validated deployment spec (``None`` for adopted legacy clusters)."""
        return self._spec

    @property
    def name(self) -> str:
        """The deployment name."""
        return self._spec.name if self._spec is not None else "adopted"

    @property
    def source(self) -> StationSource:
        """The station source the cluster serves (always present)."""
        return self._source

    @property
    def dataset(self) -> "DistributedDataset":
        """The eager dataset the cluster serves.

        Only materialized-dataset clusters have one; a lazily served
        (capped-source) cluster never holds the whole city, so asking for it
        is a :class:`ClusterStateError` — use :attr:`source` instead.
        """
        dataset = getattr(self._source, "dataset", None)
        if dataset is None:
            raise ClusterStateError(
                "this cluster is backed by a streaming StationSource and "
                "never materializes the whole dataset; use .source"
            )
        return dataset

    @property
    def stations(self) -> list[BaseStationNode]:
        """The currently materialized base-station nodes.

        Eager clusters: every pattern-bearing station.  Lazy clusters: only
        the pinned (explicitly published) stations between rounds.
        """
        return list(self._nodes.values())

    @property
    def station_ids(self) -> tuple[str, ...]:
        """Ids of the servable stations, in dataset (source) order.

        Eager clusters list the pattern-bearing stations; lazy clusters list
        every declared station that has not been withdrawn (their batches
        materialize on demand).
        """
        if self._lazy:
            return tuple(
                sid for sid in self._station_order if sid not in self._withdrawn
            )
        return tuple(self._nodes)

    @property
    def center(self) -> DataCenterNode:
        """The data-center node."""
        return self._center

    @property
    def protocol(self) -> MatchingProtocol:
        """The matching protocol this deployment runs."""
        return self._require_protocol()

    @property
    def queries(self) -> tuple[QueryPattern, ...]:
        """The currently subscribed query batch (empty before ``subscribe``)."""
        return self._queries

    @property
    def round_index(self) -> int:
        """Number of facade-recorded rounds completed so far."""
        return self._round_index

    def _require_protocol(self) -> MatchingProtocol:
        if self._protocol is None:
            raise ClusterStateError(
                "this cluster adopted a dataset without a ClusterSpec; only "
                "drive(protocol, ...) is available"
            )
        return self._protocol

    # -- registration verbs ----------------------------------------------------

    def publish(self, station_id: str, patterns: PatternSet) -> int:
        """Register (or replace) one station's local pattern data.

        Returns the number of patterns the station now stores.  The next
        round re-primes only this station's matcher; while a delta session is
        open the station is additionally re-matched incrementally and marked
        dirty for the next shipment.
        """
        if not isinstance(patterns, PatternSet):
            raise TypeError(
                f"patterns must be a PatternSet, got {type(patterns).__name__}"
            )
        key = str(station_id)
        if key not in self._station_set:
            raise ValueError(
                f"unknown station id {key!r}; expected one of the dataset's stations"
            )
        # The session hook runs first: if it refuses (e.g. a delta session
        # with no subscription yet), the cluster state must stay untouched so
        # cluster and session views never diverge.
        if self._session is not None:
            self._session._on_publish(key, patterns)
        # Station order is dataset order, independent of publish order; only
        # the published station's node is rebuilt (its inbox state is per-round
        # anyway, and the protocol-side matcher cache re-primes on the new
        # PatternSet identity).
        updated = dict(self._patterns, **{key: patterns})
        self._patterns = {
            sid: updated[sid] for sid in self._station_order if sid in updated
        }
        nodes = dict(self._nodes)
        nodes[key] = BaseStationNode(key, patterns)
        self._nodes = {sid: nodes[sid] for sid in self._patterns}
        if self._lazy:
            # An explicit publish overrides the source: pin the batch so
            # per-round release keeps it, and un-withdraw the station.
            self._pinned.add(key)
            self._withdrawn.discard(key)
        return len(patterns)

    def retire(self, station_id: str) -> None:
        """Withdraw a station's published data (the station went offline)."""
        key = str(station_id)
        self._patterns.pop(key, None)
        self._nodes.pop(key, None)
        if self._lazy:
            # Mark withdrawn so the lazy path stops re-materializing the
            # station from the source, and drop its cached batch.
            self._pinned.discard(key)
            if key in self._station_set:
                self._withdrawn.add(key)
                self._source.retire(key)
        if self._session is not None:
            self._session._on_retire(key)

    def subscribe(self, queries: Sequence[QueryPattern]) -> None:
        """Register the query batch the deployment answers.

        Re-subscribing rotates the batch; an open delta session re-encodes
        the artifact once and incrementally re-matches every station it has
        seen (exactly :meth:`ContinuousMatchingSession.replace_queries`).
        """
        require_non_empty(queries, "queries")
        self._queries = tuple(queries)
        if self._session is not None:
            self._session._on_subscribe(self._queries)

    # -- the round engine ------------------------------------------------------

    def _runner_for(self, protocol: MatchingProtocol) -> ShardedStationRunner:
        """Resolve the station runner from spec/adopted knobs, protocol config, defaults.

        Runners (and therefore their worker pools) are memoized per effective
        ``(executor, shard_count)``, so a sweep of many rounds through one
        cluster reuses one pool instead of re-spawning workers per round.
        """
        config = getattr(protocol, "config", None)
        executor = self._executor or getattr(config, "executor", "serial")
        shard_count = (
            self._shard_count
            if self._shard_count is not None
            else getattr(config, "shard_count", 0)
        )
        key = (executor, shard_count)
        runner = self._runners.get(key)
        if runner is None:
            runner = ShardedStationRunner(
                executor=executor, shard_count=shard_count, max_workers=self._max_workers
            )
            self._runners[key] = runner
        return runner

    def _network_for(
        self, protocol: MatchingProtocol, net_seed: int | None = None
    ) -> Transport:
        """Fresh per-round transport, faults resolved like the executor knobs.

        The backend is whatever the deployment's :class:`TransportSpec`
        selected: the deterministic simulator, or real localhost sockets with
        station worker processes (whose long-lived manager is created lazily
        on the first round and torn down by :meth:`close`).
        """
        plan, net_seed = self._resolved_faults(protocol, net_seed)
        return self._build_transport(
            plan,
            net_seed,
            decode_backend=getattr(getattr(protocol, "config", None), "bit_backend", "auto"),
        )

    def _resolved_faults(
        self, protocol: MatchingProtocol, net_seed: int | None
    ) -> tuple[FaultPlan, int]:
        """Resolve the effective fault plan and network seed for one round."""
        config = getattr(protocol, "config", None)
        plan = resolve_fault_plan(
            self._fault_plan
            if self._fault_plan is not None
            else getattr(config, "fault_profile", "none")
        )
        if net_seed is None:
            net_seed = (
                self._net_seed
                if self._net_seed is not None
                else getattr(config, "net_seed", 0)
            )
        return plan, net_seed

    def _build_transport(
        self,
        plan: FaultPlan,
        net_seed: int,
        *,
        decode_backend: str,
        force_sim: bool = False,
    ) -> Transport:
        """One transport on the deployment's backend (``force_sim`` overrides).

        The trunk hop of a two-tier deployment always rides the simulator —
        aggregators are co-resident with the center, a sanctioned divergence
        documented in ``docs/topology.md`` — which is what ``force_sim``
        expresses.
        """
        if self._transport_spec.transport == "tcp" and not force_sim:
            if self._tcp_manager is None:
                # Imported lazily: the TCP stack (loop thread, servers, worker
                # subprocess machinery) only loads for deployments that use it.
                from repro.distributed.transport.tcp import TcpTransportManager

                self._tcp_manager = TcpTransportManager(
                    self._network_config,
                    connect_timeout_s=self._transport_spec.tcp_connect_timeout_s,
                )
            return self._tcp_manager.create_transport(
                fault_plan=plan,
                seed=net_seed,
                decode_backend=decode_backend,
                allow_partial=self._allow_partial,
                ack_timeout_s=self._transport_spec.tcp_ack_timeout_s,
                delay_scale=self._transport_spec.tcp_delay_scale,
            )
        return SimulatedNetwork(
            self._network_config,
            fault_plan=plan,
            seed=net_seed,
            decode_backend=decode_backend,
            allow_partial=self._allow_partial,
        )

    def _tier_transports(
        self, protocol: MatchingProtocol, net_seed: int | None
    ) -> tuple[Transport, dict[str, Transport], FaultPlan, int]:
        """Fresh per-round transports for every tier of a two-tier deployment.

        Each tier derives its own seed from the round's net seed through a
        stable label, so a hierarchical round replays exactly like a flat
        one; a region with a degraded-profile override resolves its own
        fault plan, every other tier inherits the deployment's.
        """
        assert self._tier_map is not None
        plan, net_seed = self._resolved_faults(protocol, net_seed)
        decode_backend = getattr(
            getattr(protocol, "config", None), "bit_backend", "auto"
        )
        trunk = self._build_transport(
            plan,
            derive_seed(net_seed, TRUNK_SEED_LABEL),
            decode_backend=decode_backend,
            force_sim=True,
        )
        regional: dict[str, Transport] = {}
        for region in self._tier_map.regions:
            region_plan = (
                resolve_fault_plan(region.fault_profile)
                if region.fault_profile is not None
                else plan
            )
            regional[region.name] = self._build_transport(
                region_plan,
                derive_seed(net_seed, REGION_SEED_LABEL, region.name),
                decode_backend=decode_backend,
            )
        return trunk, regional, plan, net_seed

    def _participants(self, station_ids: Sequence[str] | None) -> list[BaseStationNode]:
        """Resolve one round's participating stations (``None`` = all of them).

        ``station_ids`` is how a multi-round driver models churn: a station
        absent from the round's set neither receives the artifact nor uploads
        a report, exactly like a cell that joined the network after the round
        or left before it.  Ids must name dataset stations; ids of stations
        that store no patterns are tolerated (they never participate anyway).

        Lazy (capped-source) clusters materialize the wanted stations' nodes
        here, on demand, in source order — this is where a round *publishes*
        the batches it is about to touch.
        """
        if station_ids is None:
            if not self._lazy:
                return list(self._nodes.values())
            wanted = None
        else:
            wanted = {str(station_id) for station_id in station_ids}
            unknown = wanted - self._station_set
            if unknown:
                raise ValueError(
                    f"unknown station ids {sorted(unknown)!r}; "
                    f"expected a subset of the dataset's stations"
                )
            if not self._lazy:
                return [node for sid, node in self._nodes.items() if sid in wanted]
        nodes: list[BaseStationNode] = []
        for sid in self._station_order:
            if sid in self._withdrawn or (wanted is not None and sid not in wanted):
                continue
            node = self._activate(sid)
            if node is not None:
                nodes.append(node)
        return nodes

    def _activate(self, station_id: str) -> BaseStationNode | None:
        """Materialize one station's node from the source (lazy mode only)."""
        node = self._nodes.get(station_id)
        if node is not None:
            return node
        patterns = self._source.local_patterns_at(station_id)
        if len(patterns) == 0:
            return None
        self._patterns[station_id] = patterns
        node = BaseStationNode(station_id, patterns)
        self._nodes[station_id] = node
        return node

    def _release_transient(self) -> None:
        """Drop the nodes a lazy round materialized, keeping pinned stations.

        The raw batches stay cached in the source's LRU (bounded at its
        resident cap); only the facade-side node/pattern handles are
        released, so between rounds residency is the source's business.
        """
        if not self._lazy:
            return
        for sid in [sid for sid in self._nodes if sid not in self._pinned]:
            self._nodes.pop(sid, None)
            self._patterns.pop(sid, None)

    def drive(
        self,
        protocol: MatchingProtocol,
        queries: Sequence[QueryPattern],
        k: int | None = None,
        *,
        options: RoundOptions | None = None,
    ) -> SimulationOutcome:
        """Execute one full matching round of an arbitrary protocol.

        This is the low-level engine verb: it binds no state, records no
        transcript and accepts any protocol — what a method-comparison sweep
        needs, and what the deprecated ``DistributedSimulation.run`` delegates
        to.  Facade users normally call :meth:`round` instead.  Raises
        :class:`~repro.distributed.events.RoundTimeoutError` when a transfer
        exhausts its retransmission budget and the deployment does not allow
        partial rounds.
        """
        options = options or RoundOptions()
        if k is None:
            k = options.k
        if self._tier_map is not None:
            return self._drive_two_tier(protocol, queries, k, options)
        fallbacks_before = estimated_size_fallbacks()
        participants = self._participants(options.station_ids)
        self._last_participant_count = len(participants)
        network = self._network_for(protocol, options.net_seed)
        self._center.clear_inbox()
        for station in self._nodes.values():
            station.clear_inbox()

        # Phase 1: encoding at the data center, then reliable dissemination —
        # every station decodes the artifact from the wire bytes it received.
        encode_start = time.perf_counter()
        artifact = self._center.encode(protocol, queries)
        encode_time = time.perf_counter() - encode_start

        downlink_sends: list[tuple[Message, BaseStationNode]] = []
        for station in participants:
            message = Message(
                sender=self._center.node_id,
                recipient=station.node_id,
                # The naive method distributes no artifact: stations receive
                # only a tiny control trigger.
                kind=(
                    MessageKind.FILTER_DISSEMINATION
                    if artifact is not None
                    else MessageKind.CONTROL
                ),
                payload=artifact,
            )
            downlink_sends.append((message, station))
        downlink = network.broadcast(downlink_sends)
        lost_stations = set(downlink.failed_ids)
        active_stations = [s for s in participants if s.node_id not in lost_stations]

        # The matching phase runs against what actually crossed the wire: the
        # artifact one surviving station decoded.  All surviving copies are
        # equal by the transport's integrity guarantee (checksum + canonical
        # codec), so one decoded instance is shared across shards rather than
        # shipping N copies to process workers.
        matching_artifact = (
            active_stations[0].latest_artifact() if active_stations else artifact
        )

        # Phase 2: sharded per-station matching; simulated wall time is the
        # maximum over shards (shards run concurrently, a shard sequentially).
        runner = self._runner_for(protocol)
        shard_outcomes = runner.run(protocol, active_stations, matching_artifact)
        reports_by_station = merge_shard_outcomes(shard_outcomes)
        shard_times = [outcome.elapsed_s for outcome in shard_outcomes]

        # Phase 3a: reliable uplink in deterministic station order (frames
        # serialize at the center's ingress independently of shard layout).
        uplink_sends: list[tuple[Message, DataCenterNode]] = []
        for station in active_stations:
            reports = reports_by_station[station.node_id]
            message = Message(
                sender=station.node_id,
                recipient=self._center.node_id,
                kind=MessageKind.MATCH_REPORT,
                payload=reports,
            )
            uplink_sends.append((message, self._center))
        uplink = network.gather(uplink_sends)
        lost_stations.update(uplink.failed_ids)

        # Phase 3b: aggregation over the reports the center actually decoded,
        # consumed in canonical station order so delivery reordering can never
        # change the ranking.
        decoded_by_sender = self._center.reports_by_sender()
        uplink_payload_bytes = 0
        all_reports: list[object] = []
        for message, _receiver in uplink_sends:
            if message.sender in decoded_by_sender:
                uplink_payload_bytes += message.payload_bytes()
                all_reports.extend(decoded_by_sender[message.sender])
        aggregate_start = time.perf_counter()
        results = self._center.aggregate(protocol, all_reports, k)
        aggregate_time = time.perf_counter() - aggregate_start

        stats = network.frame_stats()
        artifact_bytes = _artifact_size_bytes(artifact)
        costs = CostReport(
            method=protocol.name,
            downlink_bytes=network.downlink_bytes,
            uplink_bytes=network.uplink_bytes,
            message_count=network.message_count,
            # The center keeps the artifact it built plus everything it received;
            # every station keeps the artifact it received on top of its raw data.
            storage_center_bytes=artifact_bytes + uplink_payload_bytes,
            storage_station_bytes=artifact_bytes * len(active_stations),
            encode_time_s=encode_time,
            station_time_s=max(shard_times) if shard_times else 0.0,
            aggregate_time_s=aggregate_time,
            transmission_time_s=network.transmission_time_s(),
            report_count=len(all_reports),
            executor=runner.executor,
            shard_count=len(shard_outcomes),
            fault_profile=network.fault_plan.name,
            net_seed=network.seed,
            retransmit_count=stats.retransmit_count,
            dropped_frame_count=stats.frames_dropped,
            duplicate_frame_count=stats.frames_duplicate,
            corrupt_frame_count=stats.frames_corrupt,
            lost_station_count=len(lost_stations),
            goodput_fraction=stats.goodput_fraction,
            # How many times this round's byte accounting fell back to the
            # estimate model (0 = every charged byte is a real codec byte).
            extra=(
                {"estimated_size_fallbacks": float(fallback_count)}
                if (fallback_count := estimated_size_fallbacks() - fallbacks_before)
                else {}
            ),
        )
        outcome = SimulationOutcome(
            method=protocol.name,
            results=results,
            costs=costs,
            transcript=network.transcript,
        )
        # A lazy round is generate → encode → match → release: transient
        # nodes go back to the source's LRU before the next round's touch set.
        self._release_transient()
        return outcome

    def _drive_two_tier(
        self,
        protocol: MatchingProtocol,
        queries: Sequence[QueryPattern],
        k: int | None,
        options: RoundOptions,
    ) -> SimulationOutcome:
        """One hierarchical round: the router runs the tree, this accounts it.

        Phase structure and cost semantics live in
        :func:`repro.topology.router.run_two_tier_round`; this wrapper keeps
        exactly the flat engine's responsibilities — participant resolution,
        encode/aggregate timing, storage accounting, lazy-node release — so
        the two paths stay symmetrical.
        """
        fallbacks_before = estimated_size_fallbacks()
        participants = self._participants(options.station_ids)
        self._last_participant_count = len(participants)
        trunk, regional, plan, net_seed = self._tier_transports(
            protocol, options.net_seed
        )
        self._center.clear_inbox()
        for station in self._nodes.values():
            station.clear_inbox()

        encode_start = time.perf_counter()
        artifact = self._center.encode(protocol, queries)
        encode_time = time.perf_counter() - encode_start

        runner = self._runner_for(protocol)
        routed = run_two_tier_round(
            protocol=protocol,
            center=self._center,
            tier_map=self._tier_map,
            participants=participants,
            artifact=artifact,
            trunk_transport=trunk,
            regional_transports=regional,
            runner=runner,
        )

        aggregate_start = time.perf_counter()
        results = self._center.aggregate(protocol, routed.all_reports, k)
        aggregate_time = time.perf_counter() - aggregate_start

        artifact_bytes = _artifact_size_bytes(artifact)
        costs = CostReport(
            method=protocol.name,
            downlink_bytes=routed.downlink_bytes,
            uplink_bytes=routed.uplink_bytes,
            message_count=routed.message_count,
            # The center keeps its artifact plus the decoded summaries; every
            # station still keeps one artifact copy on top of its raw data.
            storage_center_bytes=artifact_bytes + routed.summary_payload_bytes,
            storage_station_bytes=artifact_bytes * len(routed.active_stations),
            encode_time_s=encode_time,
            station_time_s=max(routed.shard_times) if routed.shard_times else 0.0,
            aggregate_time_s=aggregate_time,
            transmission_time_s=routed.transmission_time_s,
            report_count=len(routed.all_reports),
            executor=runner.executor,
            shard_count=routed.shard_count,
            fault_profile=plan.name,
            net_seed=net_seed,
            retransmit_count=routed.retransmit_count,
            dropped_frame_count=routed.dropped_frame_count,
            duplicate_frame_count=routed.duplicate_frame_count,
            corrupt_frame_count=routed.corrupt_frame_count,
            lost_station_count=routed.lost_station_count,
            goodput_fraction=routed.goodput_fraction,
            tiers=routed.tier_costs,
            extra=(
                {"estimated_size_fallbacks": float(fallback_count)}
                if (fallback_count := estimated_size_fallbacks() - fallbacks_before)
                else {}
            ),
        )
        outcome = SimulationOutcome(
            method=protocol.name,
            results=results,
            costs=costs,
            transcript=routed.transcript,
        )
        self._release_transient()
        return outcome

    # -- facade rounds ---------------------------------------------------------

    def round(
        self,
        options: RoundOptions | None = None,
        *,
        station_ids: Sequence[str] | None = None,
        net_seed: int | None = None,
        k: int | None = None,
    ) -> RoundReport:
        """Run one full wire round of the deployment's protocol and record it.

        Per-round overrides travel either as one
        :class:`~repro.distributed.simulator.RoundOptions` or as loose
        keywords (not both).  Requires a subscribed query batch.
        """
        merged = RoundOptions.merge(options, station_ids=station_ids, net_seed=net_seed, k=k)
        protocol = self._require_protocol()
        if not self._queries:
            raise ClusterStateError("subscribe() a query batch before running a round")
        outcome = self.drive(protocol, self._queries, merged.k, options=merged)
        costs = outcome.costs
        report = RoundReport(
            round_index=self._round_index,
            mode="round",
            results=outcome.results,
            query_count=len(self._queries),
            # Captured by drive(): recomputing here would re-materialize a
            # lazy round's released stations just to count them.
            active_station_count=self._last_participant_count,
            downlink_bytes=costs.downlink_bytes,
            uplink_bytes=costs.uplink_bytes,
            latency_s=costs.transmission_time_s,
            goodput_fraction=costs.goodput_fraction,
            retransmit_count=costs.retransmit_count,
            lost_station_count=costs.lost_station_count,
            transcript=outcome.transcript,
            costs=costs,
        )
        self._record(report.transcript_bytes())
        return report

    def _record(self, transcript: bytes) -> None:
        self._transcripts.append(transcript)
        self._round_index += 1

    def transcript_bytes(self) -> bytes:
        """The cluster-level replay token.

        Every facade-recorded round's canonical transcript under a
        ``== round N ==`` header — the same framing as
        :meth:`repro.workloads.result.WorkloadResult.transcript_bytes`, so a
        scenario driven by hand through the facade compares byte-for-byte
        against an engine-driven run.
        """
        parts: list[bytes] = []
        for index, transcript in enumerate(self._transcripts):
            parts.append(b"== round %d ==\n" % index)
            parts.append(transcript)
            parts.append(b"\n")
        return b"".join(parts)

    # -- sessions --------------------------------------------------------------

    def open_session(self, mode: str = "rounds") -> "ClusterSession":
        """Open the one drive handle, in either drive style.

        ``mode="rounds"`` replays every :meth:`ClusterSession.step` as a full
        wire round; ``mode="deltas"`` keeps one continuous matching session
        alive and ships only the dirty stations' deltas per step — the
        steady-state serving model.  Only one session may be open at a time.
        """
        if mode not in SESSION_MODES:
            raise ConfigurationError(
                f"session mode must be one of {SESSION_MODES}, got {mode!r}"
            )
        if self._session is not None:
            raise ClusterStateError(
                "a session is already open on this cluster; close it first"
            )
        self._require_protocol()
        handle = ClusterSession(self, mode, self._epoch)
        self._session = handle
        return handle

    # -- snapshot / restore ----------------------------------------------------

    def snapshot(self) -> ClusterSnapshot:
        """Freeze the cluster's restorable state.

        The snapshot captures the subscription, every station's published
        patterns, the round counter and the recorded transcripts.  For a lazy
        (capped-source) cluster only the *pinned* (explicitly published)
        stations' patterns are captured, plus the withdrawn set — transient
        batches are a pure function of the source and re-derive on demand, so
        the snapshot stays small no matter how large the declared city is.
        An open delta session holds incremental matching state the snapshot
        cannot represent, so snapshotting is refused while one is open.
        """
        if self._session is not None and self._session.mode == "deltas":
            raise ClusterStateError(
                "cannot snapshot while a delta session is open; close it first"
            )
        patterns = tuple(
            (sid, pattern_set)
            for sid, pattern_set in self._patterns.items()
            if not self._lazy or sid in self._pinned
        )
        return ClusterSnapshot(
            queries=self._queries,
            patterns=patterns,
            round_index=self._round_index,
            transcripts=tuple(self._transcripts),
            withdrawn=tuple(sorted(self._withdrawn)),
        )

    def restore(self, snapshot: ClusterSnapshot) -> None:
        """Reinstall a snapshot, invalidating any open session handle.

        After restoring, the cluster continues exactly as if the intervening
        mutations never happened: the same subscription, published patterns
        and round counter, so subsequent rounds extend the restored
        transcript byte-identically.
        """
        if not isinstance(snapshot, ClusterSnapshot):
            raise TypeError(
                f"snapshot must be a ClusterSnapshot, got {type(snapshot).__name__}"
            )
        self._epoch += 1
        self._session = None
        self._queries = snapshot.queries
        self._patterns = dict(snapshot.patterns)
        self._nodes = {
            station_id: BaseStationNode(station_id, patterns)
            for station_id, patterns in self._patterns.items()
        }
        if self._lazy:
            self._pinned = set(self._patterns)
            self._withdrawn = {
                sid for sid in snapshot.withdrawn if sid in self._station_set
            }
        self._round_index = snapshot.round_index
        self._transcripts = list(snapshot.transcripts)

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        """Shut down worker pools and sockets, detach any open session handle."""
        for runner in self._runners.values():
            runner.close()
        self._runners.clear()
        if self._tcp_manager is not None:
            self._tcp_manager.shutdown()
            self._tcp_manager = None
        self._epoch += 1
        self._session = None

    def __enter__(self) -> "Cluster":
        return self

    def __exit__(self, *_exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"Cluster(name={self.name!r}, stations={len(self._nodes)}, "
            f"queries={len(self._queries)}, rounds={self._round_index})"
        )


class ClusterSession:
    """The one drive handle over an open :class:`Cluster`.

    Both drive styles share the verbs: ``publish`` / ``retire`` mutate the
    station side, ``subscribe`` rotates the query batch, ``step`` advances
    one round and returns a typed :class:`~repro.cluster.report.RoundReport`.
    In ``rounds`` mode each step is a full wire round (churn is expressed per
    step through ``RoundOptions.station_ids``); in ``deltas`` mode one
    :class:`~repro.core.streaming.ContinuousMatchingSession` spans all steps
    and only the dirty stations' report deltas ship through the seeded
    transport, while the center keeps serving the last state each station
    *delivered* — an undelivered delta leaves the previous ranking in place,
    exactly like a real deployment.
    """

    def __init__(self, cluster: Cluster, mode: str, epoch: int) -> None:
        self._cluster = cluster
        self._mode = mode
        self._epoch = epoch
        # Delta-mode state: the continuous session materializes on the first
        # publish (it needs the subscription), plus the center-side view of
        # the last delta each station delivered.
        self._inner: ContinuousMatchingSession | None = None
        self._center = DataCenterNode()
        self._delivered_reports: dict[str, list[object]] = {}
        self._artifact_bytes = 0
        self._refreshed = bool(cluster.queries)
        self._newly_published: set[str] = set()

    @property
    def mode(self) -> str:
        """The drive style of this handle (``"rounds"`` or ``"deltas"``)."""
        return self._mode

    @property
    def active_station_ids(self) -> tuple[str, ...]:
        """Stations currently participating in the session."""
        self._check_live()
        if self._mode == "deltas" and self._inner is not None:
            return tuple(self._inner.station_ids)
        return self._cluster.station_ids

    @property
    def dirty_station_ids(self) -> tuple[str, ...]:
        """Delta mode: stations changed since the last shipped step."""
        self._check_live()
        if self._inner is None:
            return ()
        return self._inner.dirty_station_ids

    def _check_live(self) -> None:
        if (
            self._cluster._session is not self
            or self._epoch != self._cluster._epoch
        ):
            raise ClusterStateError(
                "this session handle was invalidated (the cluster was "
                "restored, closed, or opened a new session)"
            )

    # -- shared verbs ----------------------------------------------------------

    def publish(self, station_id: str, patterns: PatternSet) -> int:
        """Register (or replace) one station's data within the session."""
        self._check_live()
        return self._cluster.publish(station_id, patterns)

    def retire(self, station_id: str) -> None:
        """Withdraw a station from the session."""
        self._check_live()
        self._cluster.retire(station_id)

    def subscribe(self, queries: Sequence[QueryPattern]) -> None:
        """Rotate the session's query batch (incremental re-encode in deltas mode)."""
        self._check_live()
        self._cluster.subscribe(queries)

    def step(
        self,
        options: RoundOptions | None = None,
        *,
        station_ids: Sequence[str] | None = None,
        net_seed: int | None = None,
        k: int | None = None,
    ) -> RoundReport:
        """Advance the session by one round and return its typed report."""
        self._check_live()
        merged = RoundOptions.merge(options, station_ids=station_ids, net_seed=net_seed, k=k)
        if self._mode == "rounds":
            return self._cluster.round(merged)
        return self._step_deltas(merged)

    def close(self) -> None:
        """Detach the handle from the cluster (idempotent)."""
        if self._cluster._session is self:
            self._cluster._session = None

    def __enter__(self) -> "ClusterSession":
        return self

    def __exit__(self, *_exc_info: object) -> None:
        self.close()

    # -- delta internals -------------------------------------------------------

    def _ensure_inner(self) -> ContinuousMatchingSession:
        if self._inner is None:
            queries = self._cluster.queries
            if not queries:
                raise ClusterStateError(
                    "subscribe() a query batch before publishing to a delta session"
                )
            self._inner = ContinuousMatchingSession._internal(
                self._cluster._require_protocol(), queries
            )
            self._artifact_bytes = _artifact_size_bytes(self._inner.artifact)
        return self._inner

    def _on_publish(self, station_id: str, patterns: PatternSet) -> None:
        if self._mode != "deltas":
            return
        inner = self._ensure_inner()
        if station_id not in set(inner.station_ids):
            self._newly_published.add(station_id)
        inner.update_station(station_id, patterns)

    def _on_retire(self, station_id: str) -> None:
        if self._mode != "deltas" or self._inner is None:
            return
        self._inner.remove_station(station_id)
        self._delivered_reports.pop(station_id, None)
        self._newly_published.discard(station_id)

    def _on_subscribe(self, queries: tuple[QueryPattern, ...]) -> None:
        if self._mode != "deltas":
            return
        self._refreshed = True
        if self._inner is not None:
            self._inner.replace_queries(queries)
            self._artifact_bytes = _artifact_size_bytes(self._inner.artifact)

    def _step_deltas(self, options: RoundOptions) -> RoundReport:
        if options.station_ids is not None:
            raise ValueError(
                "station_ids does not apply to a delta session; express churn "
                "through publish()/retire()"
            )
        inner = self._ensure_inner()
        cluster = self._cluster
        protocol = cluster._require_protocol()
        active_count = len(inner.station_ids)
        if cluster._tier_map is not None:
            return self._step_deltas_two_tier(options, inner, protocol, active_count)
        # Downlink is charged when the artifact changed (rotation: every
        # active station re-downloads it) and for stations that joined since
        # the last step (they receive the current artifact before matching).
        if self._refreshed:
            downlink_bytes = self._artifact_bytes * active_count
        else:
            downlink_bytes = self._artifact_bytes * len(self._newly_published)
        network = cluster._network_for(protocol, options.net_seed)
        self._center.clear_inbox()
        delivered = inner.ship_deltas(network, self._center)
        for sender, reports in self._center.reports_by_sender().items():
            self._delivered_reports[sender] = list(reports)
        results = protocol.aggregate(
            [
                report
                for reports in self._delivered_reports.values()
                for report in reports
            ],
            options.k,
        )
        stats = network.frame_stats()
        report = RoundReport(
            round_index=cluster._round_index,
            mode="delta",
            results=results,
            query_count=len(cluster.queries),
            active_station_count=active_count,
            downlink_bytes=downlink_bytes,
            uplink_bytes=network.uplink_bytes,
            latency_s=network.transmission_time_s(),
            goodput_fraction=stats.goodput_fraction,
            retransmit_count=stats.retransmit_count,
            lost_station_count=len(inner.dirty_station_ids),
            transcript=network.transcript,
            delivered_station_ids=tuple(delivered),
        )
        self._refreshed = False
        self._newly_published.clear()
        cluster._record(report.transcript_bytes())
        return report

    def _step_deltas_two_tier(
        self,
        options: RoundOptions,
        inner: ContinuousMatchingSession,
        protocol: MatchingProtocol,
        active_count: int,
    ) -> RoundReport:
        """One delta step routed through the two-tier tree.

        The dirty stations' deltas ride
        :func:`repro.topology.router.ship_two_tier_deltas`; a station is
        marked clean — and the center's view of it refreshed — only when its
        region's trunk summary delivered, so a delta stranded at an
        aggregator stays dirty and retries next step.
        """
        cluster = self._cluster
        tier_map = cluster._tier_map
        assert tier_map is not None
        # Artifact refreshes fan down the tree: once per affected region's
        # trunk hop, then once per affected station on the regional hop.
        if self._refreshed:
            affected = list(inner.station_ids)
        else:
            affected = [
                sid for sid in inner.station_ids if sid in self._newly_published
            ]
        affected_regions = {tier_map.region_of(sid).name for sid in affected}
        downlink_bytes = self._artifact_bytes * (
            len(affected) + len(affected_regions)
        )

        trunk, regional, _plan, _net_seed = cluster._tier_transports(
            protocol, options.net_seed
        )
        deltas = {
            station_id: inner.reports_for(station_id)
            for station_id in inner.dirty_station_ids
        }
        self._center.clear_inbox()
        try:
            shipped = ship_two_tier_deltas(
                center=self._center,
                tier_map=tier_map,
                deltas=deltas,
                trunk_transport=trunk,
                regional_transports=regional,
            )
        except RoundTimeoutError as error:
            # Regions whose summary landed before the trunk failed already
            # delivered their stations' deltas: settle those exactly-once,
            # then surface the failure like the flat path does.
            inner.mark_delivered(
                {
                    station_id: len(
                        Message(
                            sender=station_id,
                            recipient=self._center.node_id,
                            kind=MessageKind.MATCH_REPORT,
                            payload=deltas[station_id],
                            wire_version=tier_map.region_of(station_id).wire_version,
                        ).payload_wire()
                    )
                    for station_id in error.delivered_ids
                }
            )
            raise
        inner.mark_delivered(shipped.payload_bytes_by_station)
        for station_id in shipped.delivered_station_ids:
            self._delivered_reports[station_id] = list(
                shipped.reports_by_station.get(station_id, [])
            )
        results = protocol.aggregate(
            [
                report
                for reports in self._delivered_reports.values()
                for report in reports
            ],
            options.k,
        )
        report = RoundReport(
            round_index=cluster._round_index,
            mode="delta",
            results=results,
            query_count=len(cluster.queries),
            active_station_count=active_count,
            downlink_bytes=downlink_bytes,
            uplink_bytes=shipped.uplink_bytes,
            latency_s=shipped.transmission_time_s,
            goodput_fraction=shipped.goodput_fraction,
            retransmit_count=shipped.retransmit_count,
            lost_station_count=len(inner.dirty_station_ids),
            transcript=shipped.transcript,
            delivered_station_ids=shipped.delivered_station_ids,
        )
        self._refreshed = False
        self._newly_published.clear()
        cluster._record(report.transcript_bytes())
        return report

    def __repr__(self) -> str:
        return (
            f"ClusterSession(mode={self._mode!r}, "
            f"cluster={self._cluster.name!r})"
        )
