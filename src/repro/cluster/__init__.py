"""``repro.cluster`` — the one typed, handle-based API for the whole system.

Stand up a deployment from a validated :class:`ClusterSpec`, then drive it
through the :class:`Cluster` facade's verbs::

    from repro.cluster import Cluster, ClusterSpec, ProtocolSpec, RoundOptions
    from repro.datagen.workload import DatasetSpec

    spec = ClusterSpec(
        name="demo",
        dataset=DatasetSpec(users_per_category=5, station_count=4),
        protocol=ProtocolSpec(method="wbf", epsilon=0),
    )
    with Cluster(spec) as cluster:
        cluster.subscribe(queries)
        report = cluster.round(RoundOptions(k=10))

Everything that used to require picking one of four entry points —
``DistributedSimulation``, ``ContinuousMatchingSession``, the workload
engine's drive modes, hand-wired CLI runs — goes through this surface now;
see ``docs/api.md`` for the verb table and migration notes.
"""

from repro.cluster.facade import (
    Cluster,
    ClusterSession,
    ClusterStateError,
    SESSION_MODES,
)
from repro.cluster.report import ClusterSnapshot, RoundReport
from repro.cluster.spec import (
    ClusterSpec,
    ExecutorSpec,
    FaultSpec,
    PROTOCOL_METHODS,
    ProtocolSpec,
    TransportSpec,
)
from repro.distributed.simulator import RoundOptions

__all__ = [
    "Cluster",
    "ClusterSession",
    "ClusterSnapshot",
    "ClusterSpec",
    "ClusterStateError",
    "ExecutorSpec",
    "FaultSpec",
    "PROTOCOL_METHODS",
    "ProtocolSpec",
    "RoundOptions",
    "RoundReport",
    "SESSION_MODES",
    "TransportSpec",
]
