"""Versioned binary wire codec for every protocol artifact.

Every encoding starts with a 7-byte header::

    offset 0  magic   b"DIMW"   (4 bytes)
    offset 4  version u8        (currently 1)
    offset 5  flags   u8        (bit 0: body is zlib-compressed)
    offset 6  type    u8        (artifact tag, see the TAG_* constants)

followed by a type-specific body of varint/fixed-width fields (see
:mod:`repro.wire.primitives`).  The format is canonical: a given artifact has
exactly one encoding, independent of the bit backend it was built on and of
dict/set iteration order (the WBF weight table is sorted by encoded value
bytes, sparse positions ascend).  That property is what lets the test battery
assert byte-identical output across the NumPy and bytearray backends, and what
makes the golden fixtures stable.

Runtime knobs never travel on the wire: ``DIMatchingConfig.bit_backend``,
``executor`` and ``shard_count`` are local materialization/execution choices,
so :func:`decode` accepts a ``backend`` argument and restores those fields to
it (respectively their defaults).

Decoding a malformed buffer — bad magic, unknown version or tag, truncation,
out-of-range indices, corrupt zlib body, trailing bytes — always raises
:class:`~repro.wire.errors.WireFormatError`.
"""

from __future__ import annotations

import weakref
import zlib
from fractions import Fraction
from typing import Callable, Iterable

from repro.bloom.backend import iter_set_bits_in_bytes
from repro.bloom.standard import BloomFilter
from repro.core.config import DIMatchingConfig
from repro.core.encoder import EncodedQueryBatch
from repro.core.exceptions import ConfigurationError
from repro.core.protocol import MatchReport
from repro.core.wbf import WeightedBloomFilter
from repro.timeseries.pattern import LocalPattern, Pattern
from repro.timeseries.query import QueryPattern
from repro.wire.errors import UnsupportedWireTypeError, WireFormatError
from repro.wire.primitives import (
    ByteReader,
    uvarint_size,
    write_bool,
    write_bytes,
    write_fraction,
    write_str,
    write_svarint,
    write_u8,
    write_uvarint,
)
from repro.wire.values import encode_value, read_value, write_value

#: Magic bytes opening every encoded artifact ("DI-Matching Wire").
MAGIC = b"DIMW"
#: Default wire-format version: every writer emits it unless told otherwise,
#: so all historical byte transcripts stay stable.
WIRE_VERSION = 1

#: The forward-compatible header revision: identical to version 1 except that
#: a uvarint-prefixed *extension block* sits between the 7-byte header and the
#: (possibly compressed) body.  Current writers emit an empty block; readers
#: skip whatever length the writer declared, which is what lets a future
#: revision append header fields without breaking version-2 readers.
WIRE_VERSION_EXT = 2

#: Every version this build can read and write, ascending.
SUPPORTED_WIRE_VERSIONS = (WIRE_VERSION, WIRE_VERSION_EXT)


def negotiate_wire_version(advertised: "Iterable[int]") -> int:
    """Pick the wire version a mixed-build hop must speak: the lowest advertised.

    During a rolling upgrade an aggregator writes frames that *every* station
    in its region must decode, so the hop runs at the minimum of the versions
    the parties advertise.  Raises :class:`WireFormatError` when the set is
    empty or contains a version this build cannot speak (a peer advertising
    an unknown version cannot be safely downgraded to).
    """
    versions = sorted(set(advertised))
    if not versions:
        raise WireFormatError("cannot negotiate a wire version from an empty set")
    unknown = [v for v in versions if v not in SUPPORTED_WIRE_VERSIONS]
    if unknown:
        raise WireFormatError(
            f"cannot negotiate with unsupported wire version(s) {unknown} "
            f"(this build speaks {list(SUPPORTED_WIRE_VERSIONS)})"
        )
    return versions[0]

#: Header flag: the body (everything after the 7-byte header) is zlib-compressed.
FLAG_ZLIB = 0x01

_KNOWN_FLAGS = FLAG_ZLIB

TAG_NONE = 0x00
TAG_BLOOM_FILTER = 0x01
TAG_WBF = 0x02
TAG_ENCODED_BATCH = 0x03
TAG_MATCH_REPORT = 0x04
TAG_PATTERN = 0x05
TAG_LOCAL_PATTERN = 0x06
TAG_QUERY_PATTERN = 0x07
TAG_QUERY_BATCH = 0x08
TAG_OBJECT_LIST = 0x09
TAG_MESSAGE = 0x0A
TAG_VALUE = 0x0B

_HEADER_SIZE = 7

_KIND_CODES: dict[str, int] = {}
_KIND_NAMES: dict[int, str] = {}


def _kind_tables() -> tuple[dict[str, int], dict[int, str]]:
    """Message-kind wire codes, derived from ``MessageKind`` declaration order.

    Deriving (instead of hand-maintaining a parallel table) means a new kind
    can never be encodable-but-undecodable; the flip side is that kinds must
    only ever be *appended* to the enum — reordering or removing one changes
    existing codes and requires a ``WIRE_VERSION`` bump.  Populated lazily to
    keep this module import-free of :mod:`repro.distributed`.
    """
    if not _KIND_CODES:
        from repro.distributed.messages import MessageKind

        for code, kind in enumerate(MessageKind):
            _KIND_CODES[kind.value] = code
            _KIND_NAMES[code] = kind.value
    return _KIND_CODES, _KIND_NAMES


# -- body encoders ---------------------------------------------------------------


def _write_bloom_body(out: bytearray, bloom: BloomFilter) -> None:
    write_uvarint(out, bloom.bit_count)
    write_uvarint(out, bloom.hash_count)
    write_svarint(out, bloom.hash_family.seed)
    write_uvarint(out, bloom.item_count)
    out += bloom.bits.to_bytes()


def _check_bit_padding(bits: bytes, bit_count: int) -> None:
    """Reject set bits in the final byte's padding beyond ``bit_count``.

    The canonical encoding zeroes padding bits; accepting them would give two
    distinct byte strings for one logical filter and corrupt the decoded
    popcount (fill ratio, false-positive estimates, unions).
    """
    spare = bit_count & 7
    if spare and bits and bits[-1] >> spare:
        raise WireFormatError(
            f"set padding bits beyond bit {bit_count} in the final bit-array byte"
        )


def _read_bloom_body(reader: ByteReader, backend: str) -> BloomFilter:
    bit_count = reader.uvarint()
    hash_count = reader.uvarint()
    seed = reader.svarint()
    item_count = reader.uvarint()
    if bit_count == 0 or hash_count == 0:
        raise WireFormatError("Bloom filter with zero bit or hash count")
    bits = reader.raw((bit_count + 7) // 8)
    _check_bit_padding(bits, bit_count)
    return BloomFilter.from_state(bit_count, hash_count, seed, bits, item_count, backend=backend)


def _write_wbf_body(out: bytearray, wbf: WeightedBloomFilter) -> None:
    write_uvarint(out, wbf.bit_count)
    write_uvarint(out, wbf.hash_count)
    write_svarint(out, wbf.seed)
    write_uvarint(out, wbf.item_count)
    bits = wbf._bits.to_bytes()
    out += bits
    entries = wbf.weight_entries()
    # Every set bit carries at least one weight by construction ("each bit with
    # 1 has a pointer to the weight", Section II-B), so positions are never
    # written: the weight lists ride along the set bits of the bit array, in
    # ascending bit order.  Distinct weights are stored once in a table sorted
    # by their canonical encoding; each set bit references table indices.  Both
    # orders make the bytes independent of insertion order and backend.
    if [position for position, _ in entries] != list(
        iter_set_bits_in_bytes(bits, wbf.bit_count)
    ):
        raise ValueError(
            "WBF weight map is inconsistent with its bit array "
            "(a set bit without weights, or weights on a clear bit); "
            "cannot encode canonically"
        )
    encoded_by_weight = {
        weight: encode_value(weight) for _, weights in entries for weight in weights
    }
    encoded_weights = sorted(set(encoded_by_weight.values()))
    table_index = {data: index for index, data in enumerate(encoded_weights)}
    write_uvarint(out, len(encoded_weights))
    for data in encoded_weights:
        out += data
    for _position, weights in entries:
        indices = sorted(table_index[encoded_by_weight[weight]] for weight in weights)
        write_uvarint(out, len(indices))
        for index in indices:
            write_uvarint(out, index)


def _read_wbf_body(reader: ByteReader, backend: str) -> WeightedBloomFilter:
    bit_count = reader.uvarint()
    hash_count = reader.uvarint()
    seed = reader.svarint()
    item_count = reader.uvarint()
    if bit_count == 0 or hash_count == 0:
        raise WireFormatError("WBF with zero bit or hash count")
    bits = reader.raw((bit_count + 7) // 8)
    _check_bit_padding(bits, bit_count)
    table_count = reader.uvarint()
    table = [read_value(reader) for _ in range(table_count)]
    weights: dict[int, frozenset] = {}
    # Distinct index combinations are few (one per weight-set the encoder ever
    # attached) while set bits number in the hundreds of thousands at scale,
    # so the frozensets are interned per combination instead of rebuilt (and
    # their weights re-hashed) once per set bit.
    combos: dict[tuple[int, ...], frozenset] = {}
    read_uvarint = reader.uvarint
    for position in iter_set_bits_in_bytes(bits, bit_count):
        count = read_uvarint()
        if count == 0:
            raise WireFormatError(f"WBF weight entry at bit {position} is empty")
        if count == 1:
            # Single-index entries (the overwhelmingly common case) are
            # canonical by construction; only the range check applies.
            key: tuple[int, ...] = (read_uvarint(),)
        else:
            key = tuple(read_uvarint() for _ in range(count))
            if any(earlier >= later for earlier, later in zip(key, key[1:])):
                raise WireFormatError(f"WBF weight indices not canonical at bit {position}")
        attached = combos.get(key)
        if attached is None:
            if key[-1] >= table_count:
                raise WireFormatError(
                    f"WBF weight table index out of range at bit {position}"
                )
            attached = frozenset(table[index] for index in key)
            combos[key] = attached
        weights[position] = attached
    return WeightedBloomFilter.from_state(
        bit_count, hash_count, seed, bits, weights, item_count, backend=backend
    )


#: ``DIMatchingConfig`` fields serialized on the wire, in order.  The runtime
#: knobs (``bit_backend``, ``executor``, ``shard_count``) are deliberately
#: absent: they describe how a node runs locally, not what the filter means.
_CONFIG_WIRE_FIELDS = (
    "sample_count",
    "hash_count",
    "epsilon",
    "bit_count",
    "auto_size",
    "bits_per_element",
    "min_bit_count",
    "seed",
    "include_sample_index",
    "use_accumulation",
    "expand_epsilon",
    "epsilon_tolerance_mode",
    "deduplicate_combinations",
    "max_local_patterns",
)


def _write_config_block(out: bytearray, config: DIMatchingConfig) -> None:
    for name in _CONFIG_WIRE_FIELDS:
        write_value(out, getattr(config, name))


def _read_config_block(reader: ByteReader, backend: str) -> DIMatchingConfig:
    fields = {name: read_value(reader) for name in _CONFIG_WIRE_FIELDS}
    try:
        return DIMatchingConfig(bit_backend=backend, **fields)
    except (ConfigurationError, TypeError) as error:
        raise WireFormatError(f"decoded configuration is invalid: {error}") from error


def _write_batch_body(out: bytearray, batch: EncodedQueryBatch) -> None:
    _write_config_block(out, batch.config)
    write_uvarint(out, batch.pattern_length)
    write_uvarint(out, batch.query_count)
    write_uvarint(out, batch.combined_pattern_count)
    write_uvarint(out, batch.inserted_item_count)
    _write_wbf_body(out, batch.wbf)


def _read_batch_body(reader: ByteReader, backend: str) -> EncodedQueryBatch:
    config = _read_config_block(reader, backend)
    pattern_length = reader.uvarint()
    query_count = reader.uvarint()
    combined_pattern_count = reader.uvarint()
    inserted_item_count = reader.uvarint()
    wbf = _read_wbf_body(reader, backend)
    return EncodedQueryBatch(
        wbf=wbf,
        config=config,
        pattern_length=pattern_length,
        query_count=query_count,
        combined_pattern_count=combined_pattern_count,
        inserted_item_count=inserted_item_count,
    )


def _write_optional_weight(out: bytearray, weight: Fraction | None) -> None:
    """Presence flag plus fraction — shared by both report layouts."""
    write_bool(out, weight is not None)
    if weight is not None:
        try:
            write_fraction(out, weight)
        except ValueError as error:
            raise UnsupportedWireTypeError(
                f"match-report weight outside the wire's 64-bit numeric range: {error}"
            ) from error


def _read_optional_weight(reader: ByteReader) -> Fraction | None:
    return reader.fraction() if reader.bool_() else None


def _write_report_body(out: bytearray, report: MatchReport) -> None:
    write_str(out, report.user_id)
    write_str(out, report.station_id)
    write_str(out, report.query_id)
    _write_optional_weight(out, report.weight)


def _read_report_body(reader: ByteReader, backend: str) -> MatchReport:
    user_id = reader.str_()
    station_id = reader.str_()
    query_id = reader.str_()
    weight = _read_optional_weight(reader)
    return MatchReport(user_id=user_id, station_id=station_id, weight=weight, query_id=query_id)


def _write_values_seq(out: bytearray, values: tuple[int, ...]) -> None:
    write_uvarint(out, len(values))
    try:
        for value in values:
            write_svarint(out, value)
    except ValueError as error:
        raise UnsupportedWireTypeError(
            f"pattern value outside the wire's 64-bit numeric range: {error}"
        ) from error


def _read_values_seq(reader: ByteReader) -> list[int]:
    count = reader.uvarint()
    if count == 0:
        raise WireFormatError("pattern with zero intervals")
    return [reader.svarint() for _ in range(count)]


def _write_pattern_body(out: bytearray, pattern: Pattern) -> None:
    write_str(out, pattern.user_id)
    _write_values_seq(out, pattern.values)


def _read_pattern_body(reader: ByteReader, backend: str) -> Pattern:
    user_id = reader.str_()
    return Pattern(user_id, _read_values_seq(reader))


def _write_local_pattern_body(out: bytearray, pattern: LocalPattern) -> None:
    write_str(out, pattern.user_id)
    write_str(out, pattern.station_id)
    _write_values_seq(out, pattern.values)


def _read_local_pattern_body(reader: ByteReader, backend: str) -> LocalPattern:
    user_id = reader.str_()
    station_id = reader.str_()
    return LocalPattern(user_id, _read_values_seq(reader), station_id=station_id)


def _write_query_body(out: bytearray, query: QueryPattern) -> None:
    write_str(out, query.query_id)
    write_uvarint(out, len(query.local_patterns))
    for local in query.local_patterns:
        _write_local_pattern_body(out, local)


def _read_query_body(reader: ByteReader, backend: str) -> QueryPattern:
    query_id = reader.str_()
    count = reader.uvarint()
    if count == 0:
        raise WireFormatError(f"query {query_id!r} has no local patterns")
    locals_ = [_read_local_pattern_body(reader, backend) for _ in range(count)]
    try:
        return QueryPattern(query_id, locals_)
    except (ValueError, TypeError) as error:
        # Constructor validation (mixed user ids, mismatched fragment lengths)
        # means the buffer is corrupt — keep the typed-error contract.
        raise WireFormatError(f"decoded query {query_id!r} is invalid: {error}") from error


def _write_query_batch_body(out: bytearray, queries: tuple) -> None:
    write_uvarint(out, len(queries))
    for query in queries:
        _write_query_body(out, query)


def _read_query_batch_body(reader: ByteReader, backend: str) -> tuple:
    count = reader.uvarint()
    return tuple(_read_query_body(reader, backend) for _ in range(count))


#: Object-list layouts: generic tagged items, or the string-interned columnar
#: form used for match-report uploads (where a handful of user/station/query
#: identifiers repeat across thousands of reports and would otherwise dominate
#: the uplink).
_LIST_GENERIC = 0
_LIST_REPORT_COLUMNAR = 1


def _write_object_list_body(out: bytearray, items: list) -> None:
    if items and all(isinstance(item, MatchReport) for item in items):
        _write_report_columnar(out, items)
        return
    write_u8(out, _LIST_GENERIC)
    write_uvarint(out, len(items))
    for item in items:
        tag, writer = _dispatch(item)
        write_u8(out, tag)
        writer(out, item)


def _write_report_columnar(out: bytearray, reports: list) -> None:
    write_u8(out, _LIST_REPORT_COLUMNAR)
    write_uvarint(out, len(reports))
    table = sorted(
        {r.user_id for r in reports}
        | {r.station_id for r in reports}
        | {r.query_id for r in reports}
    )
    index = {value: position for position, value in enumerate(table)}
    write_uvarint(out, len(table))
    for value in table:
        write_str(out, value)
    for report in reports:
        write_uvarint(out, index[report.user_id])
        write_uvarint(out, index[report.station_id])
        write_uvarint(out, index[report.query_id])
        _write_optional_weight(out, report.weight)


def _read_object_list_body(reader: ByteReader, backend: str) -> list:
    layout = reader.u8()
    if layout == _LIST_REPORT_COLUMNAR:
        return _read_report_columnar(reader)
    if layout != _LIST_GENERIC:
        raise WireFormatError(f"unknown object-list layout {layout}")
    count = reader.uvarint()
    items = []
    for _ in range(count):
        tag = reader.u8()
        items.append(_read_body(tag, reader, backend))
    return items


def _read_report_columnar(reader: ByteReader) -> list:
    count = reader.uvarint()
    table_count = reader.uvarint()
    table = [reader.str_() for _ in range(table_count)]
    reports = []
    for _ in range(count):
        indices = (reader.uvarint(), reader.uvarint(), reader.uvarint())
        if any(position >= table_count for position in indices):
            raise WireFormatError("report string-table index out of range")
        weight = _read_optional_weight(reader)
        reports.append(
            MatchReport(
                user_id=table[indices[0]],
                station_id=table[indices[1]],
                weight=weight,
                query_id=table[indices[2]],
            )
        )
    return reports


def _write_message_body(out: bytearray, message: object) -> None:
    from repro.distributed.messages import Message

    if not isinstance(message, Message):  # pragma: no cover - guarded by dispatch
        raise UnsupportedWireTypeError(f"expected Message, got {type(message).__name__}")
    kind_codes, _ = _kind_tables()
    write_str(out, message.sender)
    write_str(out, message.recipient)
    write_u8(out, kind_codes[message.kind.value])
    # The message memoizes its payload encoding, so cost accounting and
    # envelope construction within one round share a single payload encode.
    write_bytes(out, message.payload_wire())


def _read_message_body(reader: ByteReader, backend: str):
    from repro.distributed.messages import Message, MessageKind

    sender = reader.str_()
    recipient = reader.str_()
    kind_code = reader.u8()
    _, kind_names = _kind_tables()
    if kind_code not in kind_names:
        raise WireFormatError(f"unknown message kind code {kind_code}")
    payload_block = reader.bytes_()
    payload = _decode_payload_cached(payload_block, backend)
    return Message(
        sender=sender,
        recipient=recipient,
        kind=MessageKind(kind_names[kind_code]),
        payload=payload,
        # Recover the hop's negotiated payload-frame version so a decoded
        # message compares equal to the one the sender built.
        wire_version=payload_block[4] if len(payload_block) > 4 else WIRE_VERSION,
    )


#: Payload-decode memoization for the broadcast hot path: a round's downlink
#: sends the *same* artifact bytes inside N per-station envelopes, and decoding
#: the filter body N times used to dominate round cost (it scaled with cluster
#: size, not with the data).  The cache maps exact payload-block bytes (plus
#: the backend) to the decoded artifact, so a broadcast decodes once and every
#: further station reuses the instance — sharing that the round engine already
#: sanctions by matching all shards against one decoded artifact.  Guard rails:
#: only large filter-bearing tags are cached (report lists are per-station
#: unique; tiny payloads are cheaper to decode than to hash), and each hit is
#: revalidated against the artifact's mutation revision so an instance mutated
#: after decode is evicted instead of served.
_PAYLOAD_DECODE_CACHE: dict[tuple[bytes, str], tuple[object, object]] = {}
_PAYLOAD_DECODE_CACHE_MAX = 8
_PAYLOAD_DECODE_MIN_BYTES = 64
_PAYLOAD_DECODE_TAGS = frozenset({TAG_WBF, TAG_ENCODED_BATCH, TAG_BLOOM_FILTER})

#: Escape hatch for benchmarks measuring the unoptimized per-station decode
#: path (and for callers that need every decode to build a fresh instance).
PAYLOAD_DECODE_CACHE_ENABLED = True


def _decode_payload_cached(data: bytes, backend: str) -> object:
    if (
        not PAYLOAD_DECODE_CACHE_ENABLED
        or len(data) < _PAYLOAD_DECODE_MIN_BYTES
        or data[6] not in _PAYLOAD_DECODE_TAGS
    ):
        return decode(data, backend=backend)
    key = (data, backend)
    entry = _PAYLOAD_DECODE_CACHE.get(key)
    if entry is not None:
        obj, revision = entry
        if object_revision(obj) == revision:
            return obj
        del _PAYLOAD_DECODE_CACHE[key]
    obj = decode(data, backend=backend)
    if len(_PAYLOAD_DECODE_CACHE) >= _PAYLOAD_DECODE_CACHE_MAX:
        # Drop the oldest entry (plain dicts preserve insertion order).
        _PAYLOAD_DECODE_CACHE.pop(next(iter(_PAYLOAD_DECODE_CACHE)))
    _PAYLOAD_DECODE_CACHE[key] = (obj, object_revision(obj))
    return obj


def clear_payload_decode_cache() -> None:
    """Drop every memoized payload decode (tests and benchmarks)."""
    _PAYLOAD_DECODE_CACHE.clear()


def _write_value_body(out: bytearray, value: object) -> None:
    write_value(out, value)


def _read_value_body(reader: ByteReader, backend: str) -> object:
    return read_value(reader)


_READERS: dict[int, Callable[[ByteReader, str], object]] = {
    TAG_BLOOM_FILTER: _read_bloom_body,
    TAG_WBF: _read_wbf_body,
    TAG_ENCODED_BATCH: _read_batch_body,
    TAG_MATCH_REPORT: _read_report_body,
    TAG_PATTERN: _read_pattern_body,
    TAG_LOCAL_PATTERN: _read_local_pattern_body,
    TAG_QUERY_PATTERN: _read_query_body,
    TAG_QUERY_BATCH: _read_query_batch_body,
    TAG_OBJECT_LIST: _read_object_list_body,
    TAG_MESSAGE: _read_message_body,
    TAG_VALUE: _read_value_body,
}


def _dispatch(obj: object) -> tuple[int, Callable[[bytearray, object], None]]:
    """Map an object to its wire tag and body writer."""
    if obj is None:
        return TAG_NONE, lambda out, _obj: None
    if isinstance(obj, WeightedBloomFilter):
        return TAG_WBF, _write_wbf_body
    if isinstance(obj, BloomFilter):
        return TAG_BLOOM_FILTER, _write_bloom_body
    if isinstance(obj, EncodedQueryBatch):
        return TAG_ENCODED_BATCH, _write_batch_body
    if isinstance(obj, MatchReport):
        return TAG_MATCH_REPORT, _write_report_body
    if isinstance(obj, LocalPattern):
        return TAG_LOCAL_PATTERN, _write_local_pattern_body
    if isinstance(obj, Pattern):
        return TAG_PATTERN, _write_pattern_body
    if isinstance(obj, QueryPattern):
        return TAG_QUERY_PATTERN, _write_query_body
    if isinstance(obj, tuple) and obj and all(isinstance(q, QueryPattern) for q in obj):
        return TAG_QUERY_BATCH, _write_query_batch_body
    if isinstance(obj, list):
        return TAG_OBJECT_LIST, _write_object_list_body
    type_name = type(obj).__name__
    if type_name == "Message":  # lazy: avoid importing repro.distributed at module load
        from repro.distributed.messages import Message

        if isinstance(obj, Message):
            return TAG_MESSAGE, _write_message_body
    if isinstance(obj, (bool, int, float, str, bytes, bytearray, Fraction, tuple)):
        return TAG_VALUE, _write_value_body
    raise UnsupportedWireTypeError(f"no wire encoding for objects of type {type_name}")


def _read_body(tag: int, reader: ByteReader, backend: str) -> object:
    if tag == TAG_NONE:
        return None
    read = _READERS.get(tag)
    if read is None:
        raise WireFormatError(f"unknown wire type tag 0x{tag:02x}")
    return read(reader, backend)


# -- public API ------------------------------------------------------------------


def encode(
    obj: object,
    *,
    compress: bool = False,
    version: int = WIRE_VERSION,
    extension: bytes = b"",
) -> bytes:
    """Encode a protocol artifact into its canonical wire bytes.

    ``compress=True`` sets the zlib flag and deflates the body (the header
    stays uncompressed so the type remains readable without inflating).
    ``version`` selects the header revision; the default keeps every
    historical transcript byte-stable.  Version-2 frames carry an
    ``extension`` block between header and body (uncompressed, so it stays
    readable without inflating); readers skip unrecognized extension bytes.
    Raises :class:`UnsupportedWireTypeError` for objects outside the protocol
    vocabulary.
    """
    if version not in SUPPORTED_WIRE_VERSIONS:
        raise WireFormatError(
            f"cannot write wire version {version} "
            f"(this build writes {list(SUPPORTED_WIRE_VERSIONS)})"
        )
    if extension and version < WIRE_VERSION_EXT:
        raise WireFormatError(
            f"wire version {version} has no extension block; use version "
            f"{WIRE_VERSION_EXT} or later"
        )
    tag, writer = _dispatch(obj)
    body = bytearray()
    writer(body, obj)
    flags = 0
    payload = bytes(body)
    if compress:
        flags |= FLAG_ZLIB
        payload = zlib.compress(payload, level=6)
    frame = bytearray(MAGIC)
    frame.append(version)
    frame.append(flags)
    frame.append(tag)
    if version >= WIRE_VERSION_EXT:
        write_uvarint(frame, len(extension))
        frame += extension
    frame += payload
    return bytes(frame)


def decode(
    data: "bytes | bytearray | memoryview",
    *,
    backend: str = "auto",
    max_version: int = SUPPORTED_WIRE_VERSIONS[-1],
) -> object:
    """Decode wire bytes back into the artifact they describe.

    ``backend`` selects the local bit-storage backend decoded filters are
    materialized on (and is restored into ``DIMatchingConfig.bit_backend``);
    it never affects which bytes are accepted.  ``max_version`` caps the
    header revisions this call accepts — passing ``1`` makes the call behave
    like a pre-upgrade build, which is how version-skew tests simulate old
    readers.  The buffer may be any bytes-like object; the uncompressed body
    is read through a zero-copy view rather than sliced out of the frame.
    """
    if len(data) < _HEADER_SIZE:
        raise WireFormatError(
            f"buffer of {len(data)} bytes is shorter than the {_HEADER_SIZE}-byte header"
        )
    if data[:4] != MAGIC:
        raise WireFormatError(f"bad magic {bytes(data[:4])!r}, expected {MAGIC!r}")
    version = data[4]
    if version not in SUPPORTED_WIRE_VERSIONS or version > max_version:
        readable = [v for v in SUPPORTED_WIRE_VERSIONS if v <= max_version]
        raise WireFormatError(
            f"unsupported wire version {version} (this build reads {readable})"
        )
    flags = data[5]
    if flags & ~_KNOWN_FLAGS:
        raise WireFormatError(f"unknown header flags 0x{flags:02x}")
    tag = data[6]
    body: "bytes | memoryview" = memoryview(data)[_HEADER_SIZE:]
    if version >= WIRE_VERSION_EXT:
        header_reader = ByteReader(body)
        extension_size = header_reader.uvarint()
        header_reader.raw(extension_size)  # opaque to this build: skip it
        body = body[header_reader.offset :]
    if flags & FLAG_ZLIB:
        try:
            body = zlib.decompress(body)
        except zlib.error as error:
            raise WireFormatError(f"corrupt compressed body: {error}") from error
    reader = ByteReader(body)
    obj = _read_body(tag, reader, backend)
    reader.expect_eof()
    return obj


#: id -> (weakref, revision, encoded bytes).  Keyed by identity so unhashable
#: artifacts (filters define ``__eq__`` without ``__hash__``) can still be
#: cached; the weakref callback evicts entries when the artifact is
#: garbage-collected, and the revision guards against post-encode mutation.
_ENCODE_CACHE: dict[int, tuple[weakref.ref, object, bytes]] = {}

_NONE_ENCODING = MAGIC + bytes((WIRE_VERSION, 0, TAG_NONE))


def object_revision(obj: object) -> object:
    """Mutation revision of an artifact, or None when it has no counter.

    Filters expose a ``revision`` bumped on every insertion; an
    :class:`EncodedQueryBatch` inherits its WBF's.  Used to invalidate cached
    encodings of mutable artifacts — an object without a counter is cached on
    identity alone (immutable protocol objects).
    """
    revision = getattr(obj, "revision", None)
    if revision is None and isinstance(obj, EncodedQueryBatch):
        revision = obj.wbf.revision
    return revision


def encode_cached(obj: object) -> bytes:
    """Encode with per-object memoization (uncompressed encodings only).

    The broadcast phase encodes the *same* artifact object once per station;
    this cache makes every send after the first O(1).  Cached entries are
    invalidated when a filter's mutation :func:`object_revision` changes, so
    encode → mutate → encode never serves stale bytes.  Objects that cannot
    hold weak references (tuples, lists) are encoded afresh each call.
    """
    if obj is None:
        return _NONE_ENCODING
    key = id(obj)
    entry = _ENCODE_CACHE.get(key)
    if entry is not None:
        ref, revision, data = entry
        if ref() is obj and revision == object_revision(obj):
            return data
    data = encode(obj)
    try:
        ref = weakref.ref(obj, lambda _ref, _key=key: _ENCODE_CACHE.pop(_key, None))
    except TypeError:
        return data
    _ENCODE_CACHE[key] = (ref, object_revision(obj), data)
    return data


def encoded_size(obj: object) -> int:
    """Actual wire size of ``obj`` in bytes (memoized via :func:`encode_cached`)."""
    return len(encode_cached(obj))


def message_envelope_size(sender: str, recipient: str, payload_size: int) -> int:
    """Exact encoded size of a message envelope around a ``payload_size`` payload.

    Computed arithmetically so cost accounting for a broadcast of N station
    messages sharing one artifact never materializes N copies of the envelope
    bytes — the simulator charges ``header + routing fields + payload block``
    without building it.  Kept in lockstep with :func:`_write_message_body` by
    a unit test asserting equality with ``len(encode(message))``.
    """
    sender_bytes = sender.encode("utf-8")
    recipient_bytes = recipient.encode("utf-8")
    return (
        _HEADER_SIZE
        + uvarint_size(len(sender_bytes))
        + len(sender_bytes)
        + uvarint_size(len(recipient_bytes))
        + len(recipient_bytes)
        + 1  # kind code
        + uvarint_size(payload_size)
        + payload_size
    )
