"""Length-prefixed stream framing for byte-stream transports.

A TCP connection is a byte stream: a single ``write`` may be split across many
reads (partial reads) and many writes may land in one read (coalescing), so a
real-socket transport needs a reassembly layer that turns arbitrary byte
chunks back into the discrete ``DIMW`` frames the protocol speaks.  This
module is that layer, shared by the TCP transport's center, proxy and station
workers.

Every stream frame is::

    offset 0  magic   b"DIMS"                  (4 bytes, "DI-Matching Stream")
    offset 4  length  u32 big-endian           (payload byte count)
    offset 8  crc32   u32 big-endian           (zlib.crc32 of the payload)
    offset 12 payload length bytes

The fixed 12-byte header makes resynchronization decidable: a buffer that is
not positioned at a frame boundary fails the magic check (or, for adversarial
byte patterns that happen to spell the magic, the CRC check) instead of being
silently mis-framed.  :class:`FrameStreamDecoder` therefore has exactly three
outcomes per buffered region — a complete frame, "need more bytes", or a
typed :class:`~repro.wire.errors.WireFormatError` — which the property suite
pins under hypothesis-generated chunkings.

The payload CRC is *framing* integrity, not transport integrity: the TCP
fault proxy deliberately corrupts transport payloads while keeping the stream
frame well-formed, so in-flight corruption is detected by the transport's own
per-frame checksum (mirroring the simulator's link-layer checksum), while a
CRC failure at this layer means the stream itself lost sync.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass

from repro.wire.errors import WireFormatError

#: Magic bytes opening every stream frame.
STREAM_MAGIC = b"DIMS"

#: Fixed header size: magic (4) + length (4) + crc32 (4).
STREAM_HEADER_SIZE = 12

#: Upper bound on a single frame's payload.  Anything larger is rejected as a
#: framing error rather than buffered indefinitely — a desynchronized stream
#: read as a length field must not turn into an unbounded allocation.
MAX_FRAME_BYTES = 64 * 1024 * 1024

_HEADER = struct.Struct(">4sII")


def encode_stream_frame(payload: bytes) -> bytes:
    """Wrap ``payload`` in one length-prefixed, CRC-protected stream frame."""
    if len(payload) > MAX_FRAME_BYTES:
        raise ValueError(
            f"stream frame payload of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte frame limit"
        )
    return _HEADER.pack(STREAM_MAGIC, len(payload), zlib.crc32(payload)) + payload


@dataclass(frozen=True)
class StreamFrame:
    """One reassembled stream frame.

    ``crc_ok`` is False when the payload arrived complete but failed the
    framing CRC — the decoder stays in sync (the length field told it where
    the frame ends) and keeps decoding, but the frame must not be trusted.
    """

    payload: bytes
    crc_ok: bool = True


class FrameStreamDecoder:
    """Incremental reassembly of stream frames from arbitrary byte chunks.

    Feed it whatever the socket produced — partial headers, split payloads,
    many coalesced frames — and it returns every frame that completed.  Bytes
    that cannot be the start of a frame (bad magic, absurd length) raise
    :class:`WireFormatError` immediately; a frame whose payload fails the CRC
    is returned with ``crc_ok=False``.  The decoder never yields a frame whose
    payload differs from what the sender framed while claiming ``crc_ok``.
    """

    __slots__ = ("_buffer",)

    def __init__(self) -> None:
        self._buffer = bytearray()

    @property
    def buffered(self) -> int:
        """Number of bytes held waiting for the rest of a frame."""
        return len(self._buffer)

    @property
    def at_boundary(self) -> bool:
        """True when no partial frame is pending (a clean stream end point)."""
        return not self._buffer

    def feed(self, data: bytes) -> list[StreamFrame]:
        """Absorb ``data`` and return every frame it completed, in order."""
        self._buffer += data
        frames: list[StreamFrame] = []
        while True:
            if len(self._buffer) < STREAM_HEADER_SIZE:
                # Even a partial header can be known-bad: reject as soon as
                # the bytes present cannot be a prefix of the magic.
                if self._buffer and not STREAM_MAGIC.startswith(
                    bytes(self._buffer[: len(STREAM_MAGIC)])
                ):
                    raise WireFormatError(
                        f"stream desynchronized: buffer starts with "
                        f"{bytes(self._buffer[:4])!r}, expected magic {STREAM_MAGIC!r}"
                    )
                return frames
            magic, length, crc = _HEADER.unpack_from(self._buffer, 0)
            if magic != STREAM_MAGIC:
                raise WireFormatError(
                    f"stream desynchronized: bad frame magic {magic!r} "
                    f"(expected {STREAM_MAGIC!r})"
                )
            if length > MAX_FRAME_BYTES:
                raise WireFormatError(
                    f"stream frame claims {length} payload bytes, over the "
                    f"{MAX_FRAME_BYTES}-byte limit — treating as desynchronization"
                )
            end = STREAM_HEADER_SIZE + length
            if len(self._buffer) < end:
                return frames
            payload = bytes(self._buffer[STREAM_HEADER_SIZE:end])
            del self._buffer[:end]
            frames.append(StreamFrame(payload=payload, crc_ok=zlib.crc32(payload) == crc))

    def expect_boundary(self) -> None:
        """Raise unless the stream ended exactly on a frame boundary."""
        if self._buffer:
            raise WireFormatError(
                f"stream ended mid-frame with {len(self._buffer)} undecoded bytes"
            )
