"""Typed errors raised by the binary wire codec."""

from __future__ import annotations

from repro.core.exceptions import ReproError


class WireFormatError(ReproError):
    """Raised when a wire buffer cannot be decoded.

    Covers every malformed-input condition: bad magic, unknown version or type
    tag, truncated buffers, oversized varints, out-of-range indices, corrupt
    compressed bodies and trailing garbage.  Decoders never let a malformed
    buffer surface as a bare ``struct.error`` / ``IndexError`` / ``zlib.error``.
    """


class UnsupportedWireTypeError(WireFormatError):
    """Raised when an object has no registered wire encoding.

    Callers that accept arbitrary payloads (e.g. the message layer) catch this
    and fall back to the estimate-based cost model.
    """
