"""Low-level field encodings shared by every wire codec.

Integers travel as LEB128 varints (unsigned, or zigzag-mapped for signed
values) so small values — bit positions, table indices, pattern values — cost
one or two bytes instead of a fixed eight.  Floats are big-endian IEEE-754
doubles; strings and byte blobs are length-prefixed.  All reads go through
:class:`ByteReader`, which turns every malformed-input condition into a typed
:class:`~repro.wire.errors.WireFormatError` instead of a bare ``IndexError``.
"""

from __future__ import annotations

import struct
from fractions import Fraction

from repro.wire.errors import WireFormatError

#: Longest accepted varint: 10 bytes encode up to 70 payload bits, enough for
#: any 64-bit value.  Longer runs are rejected as corrupt rather than decoded
#: into unbounded Python integers.
MAX_VARINT_BYTES = 10

_U64_MAX = (1 << 64) - 1


def write_uvarint(out: bytearray, value: int) -> None:
    """Append ``value`` as an unsigned LEB128 varint."""
    if value < 0:
        raise ValueError(f"uvarint value must be >= 0, got {value}")
    if value > _U64_MAX:
        raise ValueError(f"uvarint value must fit in 64 bits, got {value}")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def write_svarint(out: bytearray, value: int) -> None:
    """Append ``value`` as a zigzag-mapped signed varint."""
    if not -(1 << 63) <= value < (1 << 63):
        raise ValueError(f"svarint value must fit in 64 bits, got {value}")
    write_uvarint(out, (value << 1) ^ (value >> 63))


def write_u8(out: bytearray, value: int) -> None:
    """Append one unsigned byte."""
    if not 0 <= value <= 0xFF:
        raise ValueError(f"u8 value out of range: {value}")
    out.append(value)


def write_f64(out: bytearray, value: float) -> None:
    """Append a big-endian IEEE-754 double."""
    out += struct.pack(">d", value)


def write_bytes(out: bytearray, data: bytes) -> None:
    """Append a length-prefixed byte blob."""
    write_uvarint(out, len(data))
    out += data


def write_str(out: bytearray, text: str) -> None:
    """Append a length-prefixed UTF-8 string."""
    write_bytes(out, text.encode("utf-8"))


def write_bool(out: bytearray, value: bool) -> None:
    """Append a boolean as one byte (0 or 1)."""
    out.append(1 if value else 0)


def write_fraction(out: bytearray, fraction: Fraction) -> None:
    """Append an exact fraction as signed numerator + unsigned denominator.

    The single definition of the fraction wire layout — weight values, match
    reports and anything else carrying a :class:`fractions.Fraction` must go
    through here so the encodings cannot diverge.  Raises :class:`ValueError`
    when either component exceeds the wire's 64-bit numeric range.
    """
    write_svarint(out, fraction.numerator)
    write_uvarint(out, fraction.denominator)


def uvarint_size(value: int) -> int:
    """Number of bytes :func:`write_uvarint` produces for ``value``."""
    if value < 0 or value > _U64_MAX:
        raise ValueError(f"uvarint value out of range: {value}")
    size = 1
    while value > 0x7F:
        value >>= 7
        size += 1
    return size


class ByteReader:
    """Sequential reader over an immutable buffer with typed failure modes.

    Every accessor raises :class:`WireFormatError` when the buffer is too
    short, a varint overruns its maximum width, or a value is structurally
    invalid — decoding a truncated or corrupted message can never escape as a
    low-level exception.

    The reader is zero-copy at construction: ``bytes`` buffers are referenced
    directly and ``bytearray``/``memoryview`` inputs are wrapped in a
    :class:`memoryview` rather than copied, so decoding a payload embedded in
    a larger frame never duplicates the frame.  Bytes are materialized only at
    the accessors that must hand out ``bytes`` (:meth:`raw` and everything
    built on it).
    """

    __slots__ = ("_data", "_offset")

    def __init__(self, data: "bytes | bytearray | memoryview") -> None:
        if type(data) is bytes:
            self._data: "bytes | memoryview" = data
        elif isinstance(data, (bytearray, memoryview)):
            self._data = memoryview(data)
        else:
            self._data = bytes(data)
        self._offset = 0

    @property
    def offset(self) -> int:
        """Current read position."""
        return self._offset

    @property
    def remaining(self) -> int:
        """Number of unread bytes."""
        return len(self._data) - self._offset

    def raw(self, count: int) -> bytes:
        """Read exactly ``count`` raw bytes."""
        if count < 0:
            raise WireFormatError(f"cannot read a negative byte count ({count})")
        if self.remaining < count:
            raise WireFormatError(
                f"buffer truncated: needed {count} bytes at offset {self._offset}, "
                f"only {self.remaining} remain"
            )
        start = self._offset
        self._offset += count
        chunk = self._data[start : self._offset]
        return chunk if chunk.__class__ is bytes else bytes(chunk)

    def u8(self) -> int:
        """Read one unsigned byte."""
        data = self._data
        offset = self._offset
        if offset >= len(data):
            raise WireFormatError(
                f"buffer truncated: needed 1 bytes at offset {offset}, only 0 remain"
            )
        self._offset = offset + 1
        return data[offset]

    def uvarint(self) -> int:
        """Read an unsigned LEB128 varint."""
        data = self._data
        offset = self._offset
        length = len(data)
        result = 0
        shift = 0
        consumed = 0
        while consumed < MAX_VARINT_BYTES:
            if offset >= length:
                self._offset = offset
                raise WireFormatError(
                    f"buffer truncated: needed 1 bytes at offset {offset}, only 0 remain"
                )
            byte = data[offset]
            offset += 1
            consumed += 1
            result |= (byte & 0x7F) << shift
            if not byte & 0x80:
                self._offset = offset
                if result > _U64_MAX:
                    raise WireFormatError(f"varint exceeds 64 bits at offset {offset}")
                return result
            shift += 7
        self._offset = offset
        raise WireFormatError(
            f"varint longer than {MAX_VARINT_BYTES} bytes at offset {offset}"
        )

    def svarint(self) -> int:
        """Read a zigzag-mapped signed varint."""
        raw = self.uvarint()
        return (raw >> 1) ^ -(raw & 1)

    def f64(self) -> float:
        """Read a big-endian IEEE-754 double."""
        return struct.unpack(">d", self.raw(8))[0]

    def bytes_(self) -> bytes:
        """Read a length-prefixed byte blob."""
        return self.raw(self.uvarint())

    def str_(self) -> str:
        """Read a length-prefixed UTF-8 string."""
        try:
            return self.bytes_().decode("utf-8")
        except UnicodeDecodeError as error:
            raise WireFormatError(f"invalid UTF-8 string at offset {self._offset}") from error

    def bool_(self) -> bool:
        """Read a boolean byte (must be exactly 0 or 1)."""
        value = self.u8()
        if value > 1:
            raise WireFormatError(f"invalid boolean byte {value} at offset {self._offset}")
        return bool(value)

    def fraction(self) -> Fraction:
        """Read a :func:`write_fraction` pair; zero denominators are corrupt."""
        numerator = self.svarint()
        denominator = self.uvarint()
        if denominator == 0:
            raise WireFormatError(f"fraction with zero denominator at offset {self._offset}")
        return Fraction(numerator, denominator)

    def expect_eof(self) -> None:
        """Raise unless the whole buffer has been consumed."""
        if self.remaining:
            raise WireFormatError(
                f"{self.remaining} trailing bytes after decoded value at offset {self._offset}"
            )
