"""Tagged encoding of scalar values and small tuples.

The Weighted Bloom Filter is weight-type-agnostic ("any hashable value"), so
the codec needs a self-describing encoding for the weight domain actually used
by the protocols — exact :class:`fractions.Fraction` weights, the
``(query_id, Fraction)`` qualified weights of batched DI-matching, and the
plain scalars of control payloads.  Every value is one tag byte followed by a
tag-specific body; tuples nest.

The byte encoding of a value is canonical (no two encodings for the same
value), which lets the WBF codec sort its weight table by encoded bytes and
produce identical output regardless of the insertion order or bit backend the
filter was built with.
"""

from __future__ import annotations

from fractions import Fraction

from repro.wire.errors import UnsupportedWireTypeError, WireFormatError
from repro.wire.primitives import (
    ByteReader,
    write_bytes,
    write_f64,
    write_fraction,
    write_str,
    write_svarint,
    write_u8,
    write_uvarint,
)

_VAL_NONE = 0x00
_VAL_FALSE = 0x01
_VAL_TRUE = 0x02
_VAL_INT = 0x03
_VAL_FLOAT = 0x04
_VAL_STR = 0x05
_VAL_BYTES = 0x06
_VAL_FRACTION = 0x07
_VAL_TUPLE = 0x08


def write_value(out: bytearray, value: object) -> None:
    """Append one tagged value.

    Raises :class:`UnsupportedWireTypeError` for types without a wire encoding
    *and* for integers / fraction components outside the wire's 64-bit numeric
    range — both mean "this payload cannot travel in this format", and callers
    (e.g. the message layer) fall back to the estimate model for either.
    """
    try:
        _write_value_checked(out, value)
    except ValueError as error:
        raise UnsupportedWireTypeError(
            f"value outside the wire's 64-bit numeric range: {error}"
        ) from error


def _write_value_checked(out: bytearray, value: object) -> None:
    if value is None:
        write_u8(out, _VAL_NONE)
    elif isinstance(value, bool):
        write_u8(out, _VAL_TRUE if value else _VAL_FALSE)
    elif isinstance(value, Fraction):
        write_u8(out, _VAL_FRACTION)
        write_fraction(out, value)
    elif isinstance(value, int):
        write_u8(out, _VAL_INT)
        write_svarint(out, value)
    elif isinstance(value, float):
        write_u8(out, _VAL_FLOAT)
        write_f64(out, value)
    elif isinstance(value, str):
        write_u8(out, _VAL_STR)
        write_str(out, value)
    elif isinstance(value, (bytes, bytearray)):
        write_u8(out, _VAL_BYTES)
        write_bytes(out, bytes(value))
    elif isinstance(value, tuple):
        write_u8(out, _VAL_TUPLE)
        write_uvarint(out, len(value))
        for part in value:
            write_value(out, part)
    else:
        raise UnsupportedWireTypeError(
            f"no wire encoding for value of type {type(value).__name__}"
        )


def encode_value(value: object) -> bytes:
    """Encode one value to standalone bytes (used for canonical sorting)."""
    out = bytearray()
    write_value(out, value)
    return bytes(out)


def read_value(reader: ByteReader) -> object:
    """Read one tagged value."""
    tag = reader.u8()
    if tag == _VAL_NONE:
        return None
    if tag == _VAL_FALSE:
        return False
    if tag == _VAL_TRUE:
        return True
    if tag == _VAL_INT:
        return reader.svarint()
    if tag == _VAL_FLOAT:
        return reader.f64()
    if tag == _VAL_STR:
        return reader.str_()
    if tag == _VAL_BYTES:
        return reader.bytes_()
    if tag == _VAL_FRACTION:
        return reader.fraction()
    if tag == _VAL_TUPLE:
        count = reader.uvarint()
        return tuple(read_value(reader) for _ in range(count))
    raise WireFormatError(f"unknown value tag 0x{tag:02x}")
