"""Binary wire codec for the distributed matching protocols.

The package turns every artifact the protocols exchange — Bloom and Weighted
Bloom filters, encoded query batches, raw patterns and queries, match reports,
and whole :class:`~repro.distributed.messages.Message` envelopes — into a
versioned, self-describing, canonical byte encoding, and back.  The simulated
environment charges *these* byte counts (not estimates) as its communication
and storage cost model; see :mod:`repro.wire.codec` for the format.
"""

from repro.wire.codec import (
    FLAG_ZLIB,
    MAGIC,
    SUPPORTED_WIRE_VERSIONS,
    WIRE_VERSION,
    WIRE_VERSION_EXT,
    decode,
    encode,
    encode_cached,
    encoded_size,
    message_envelope_size,
    negotiate_wire_version,
    object_revision,
)
from repro.wire.errors import UnsupportedWireTypeError, WireFormatError
from repro.wire.primitives import ByteReader
from repro.wire.stream import (
    MAX_FRAME_BYTES,
    STREAM_HEADER_SIZE,
    STREAM_MAGIC,
    FrameStreamDecoder,
    StreamFrame,
    encode_stream_frame,
)

__all__ = [
    "FLAG_ZLIB",
    "MAGIC",
    "SUPPORTED_WIRE_VERSIONS",
    "WIRE_VERSION",
    "WIRE_VERSION_EXT",
    "negotiate_wire_version",
    "decode",
    "encode",
    "encode_cached",
    "encoded_size",
    "message_envelope_size",
    "object_revision",
    "UnsupportedWireTypeError",
    "WireFormatError",
    "ByteReader",
    "MAX_FRAME_BYTES",
    "STREAM_HEADER_SIZE",
    "STREAM_MAGIC",
    "FrameStreamDecoder",
    "StreamFrame",
    "encode_stream_frame",
]
