"""Command-line interface for running the reproduction experiments.

Usage (after ``pip install -e .``)::

    python -m repro.cli compare --users-per-category 30 --queries 12
    python -m repro.cli table2 --days 2
    python -m repro.cli convergence --samples 1 2 5 12
    python -m repro.cli figure fig1a

Each sub-command builds the relevant synthetic workload, runs the experiment and
prints the same plain-text table/chart the benchmark harness records under
``benchmarks/results/``.  Every round any sub-command executes — ``compare``'s
method sweep and ``workload run``'s scenario drives alike — goes through the
``repro.cluster.Cluster`` facade engine (via ``run_comparison`` /
``run_workload``); the CLI only parses knobs and renders reports.
"""

from __future__ import annotations

import argparse
import sys
import warnings
from dataclasses import replace
from typing import Sequence

from repro.core.config import (
    DIMatchingConfig,
    EXECUTOR_CHOICES,
    FAULT_PROFILE_CHOICES,
    TRANSPORT_CHOICES,
    WORKLOAD_DRIVE_CHOICES,
)
from repro.datagen.workload import DatasetSpec, build_dataset, build_query_workload
from repro.evaluation.experiments import (
    convergence_study,
    effectiveness_study,
    run_comparison,
)
from repro.evaluation.figures import (
    accumulated_category_series,
    category_mean_series,
    local_similarity_counts,
)
from repro.evaluation.reporting import (
    format_convergence_table,
    format_effectiveness_table,
)
from repro.core.exceptions import ConfigurationError
from repro.topology import TOPOLOGY_KINDS, TopologySpec
from repro.utils.asciiplot import render_cdf, render_line_chart, render_table
from repro.workloads import (
    OfferedLoad,
    RampPhase,
    TenantSpec,
    get_scenario,
    run_workload,
    scenario_names,
    SCENARIOS,
)


def _non_negative_int(text: str) -> int:
    """Argparse type for counts where 0 means "auto"."""
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0 (0 = auto), got {value}")
    return value


def _positive_int(text: str) -> int:
    """Argparse type for counts that must be at least 1."""
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _positive_float(text: str) -> float:
    """Argparse type for rates that must be > 0."""
    value = float(text)
    if not value > 0.0:
        raise argparse.ArgumentTypeError(f"must be > 0, got {value}")
    return value


def _parse_ramp(text: str) -> "tuple[RampPhase, ...]":
    """Parse ``label:duration[:multiplier],...`` into a ramp schedule."""
    phases = []
    for chunk in text.split(","):
        parts = chunk.strip().split(":")
        if len(parts) not in (2, 3) or not parts[0]:
            raise SystemExit(
                f"workload run: bad --ramp phase {chunk.strip()!r}; expected "
                "label:duration_s[:rate_multiplier]"
            )
        try:
            duration = float(parts[1])
            multiplier = float(parts[2]) if len(parts) == 3 else 1.0
            phases.append(RampPhase(parts[0], duration, multiplier))
        except (ValueError, ConfigurationError) as error:
            raise SystemExit(f"workload run: bad --ramp phase {chunk.strip()!r}: {error}")
    return tuple(phases)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction experiments for DI-matching (ICDCS 2012).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    compare = subparsers.add_parser(
        "compare", help="Compare naive / local / BF / WBF on a synthetic workload."
    )
    compare.add_argument("--users-per-category", type=int, default=30)
    compare.add_argument("--stations", type=int, default=6)
    compare.add_argument("--days", type=int, default=1)
    compare.add_argument("--intervals-per-day", type=int, default=24)
    compare.add_argument("--queries", type=int, default=12)
    compare.add_argument("--epsilon", type=int, default=0)
    compare.add_argument("--noise", type=int, default=0)
    compare.add_argument("--sample-count", type=int, default=12)
    compare.add_argument("--seed", type=int, default=7)
    compare.add_argument(
        "--methods", nargs="+", default=["naive", "bf", "wbf"],
        choices=["naive", "local", "bf", "wbf"],
    )
    compare.add_argument(
        "--bit-backend", default="auto", choices=["auto", "python", "numpy"],
        help="Bit-storage backend for the BF/WBF filters (auto = NumPy when available).",
    )
    compare.add_argument(
        "--executor", default="serial", choices=list(EXECUTOR_CHOICES),
        help="Station-execution backend: serial (default), thread, or process "
        "(results are identical across executors; only wall-clock changes).",
    )
    compare.add_argument(
        "--shards", type=_non_negative_int, default=0,
        help="Number of station shards for the executor (0 = auto: one per "
        "station when serial, one per worker otherwise).",
    )
    compare.add_argument(
        "--fault-profile", default="none", choices=list(FAULT_PROFILE_CHOICES),
        help="Seeded fault plan of the simulated network (drop/duplicate/"
        "corrupt/reorder/straggler/blackout); surviving rounds produce "
        "identical results under any profile — only the costs change.",
    )
    compare.add_argument(
        "--net-seed", type=int, default=0,
        help="Seed of the network fault injector; the same (dataset seed, "
        "net seed, profile) triple replays a byte-identical event transcript.",
    )
    compare.add_argument(
        "--allow-partial", action="store_true",
        help="Let rounds survive station timeouts (lost stations drop out) "
        "instead of failing with RoundTimeoutError.",
    )

    table2 = subparsers.add_parser("table2", help="Reproduce Table II (effectiveness).")
    table2.add_argument("--days", type=int, default=4)
    table2.add_argument("--cohort-size", type=int, default=310)
    table2.add_argument("--epsilon", type=int, default=2)
    table2.add_argument("--seed", type=int, default=2009)

    convergence = subparsers.add_parser(
        "convergence", help="Reproduce the sample-count convergence study (Section V-B)."
    )
    convergence.add_argument("--samples", type=int, nargs="+", default=[1, 2, 3, 5, 8, 12, 16])
    convergence.add_argument("--groups", type=int, default=4)
    convergence.add_argument("--seed", type=int, default=97)

    figure = subparsers.add_parser("figure", help="Reproduce a descriptive figure.")
    figure.add_argument("name", choices=["fig1a", "fig1b", "fig3"])
    figure.add_argument("--seed", type=int, default=5)

    workload = subparsers.add_parser(
        "workload",
        help="Run or list the named multi-round traffic scenarios (repro.workloads).",
    )
    workload_sub = workload.add_subparsers(dest="workload_command", required=True)

    workload_sub.add_parser(
        "list", help="Print the scenario catalog with each spec's shape."
    )

    run = workload_sub.add_parser(
        "run",
        help="Replay one scenario; (scenario, seed) fully determines the run.",
    )
    run.add_argument("scenario", choices=list(scenario_names()))
    run.add_argument(
        "--rounds", type=_positive_int, default=None,
        help="Override the scenario's round count.",
    )
    run.add_argument(
        "--stations", type=_positive_int, default=None,
        help="Override the scenario's station count.",
    )
    run.add_argument(
        "--users-per-category", type=_positive_int, default=None,
        help="Override the synthetic population density (on streaming-source "
        "scenarios this is a deprecated alias for --users-per-station).",
    )
    run.add_argument(
        "--users-per-station", type=_positive_int, default=None,
        help="Streaming-source scenarios: users derived per station batch "
        "(the declared population is stations x this).",
    )
    run.add_argument(
        "--max-resident", type=_positive_int, default=None,
        help="Streaming-source scenarios: LRU cap on resident station batches "
        "(the memory bound of the soak).",
    )
    run.add_argument(
        "--seed", type=int, default=None,
        help="Override the scenario seed (the replay identity is (scenario, seed)).",
    )
    run.add_argument(
        "--drive", default=None, choices=list(WORKLOAD_DRIVE_CHOICES),
        help="simulation = full wire rounds (default); session = incremental "
        "deltas through a continuous matching session; open = rate-driven "
        "admissions on a virtual clock (implied by --arrival-rate).",
    )
    run.add_argument(
        "--arrival-rate", type=_positive_float, default=None, metavar="QPS",
        help="Open-system target arrival rate in query batches per virtual "
        "second; implies --drive open and overrides the scenario's offered "
        "load. Past the cluster's service capacity, queueing delay accrues "
        "into latency_s (graceful saturation).",
    )
    run.add_argument(
        "--ramp", type=_parse_ramp, default=None,
        metavar="LABEL:DUR[:MULT],...",
        help="Open-system ramp schedule, e.g. "
        "'warm-up:4:0.5,plateau:8,spike:4:2.5,drain:4:0' — each phase offers "
        "arrival-rate x MULT for DUR virtual seconds.",
    )
    run.add_argument(
        "--arrival-process", default=None, choices=["poisson", "scheduled"],
        help="Inter-arrival draw process of the open drive: poisson = "
        "exponential gaps, scheduled = exact 1/rate spacing.",
    )
    run.add_argument(
        "--max-arrivals", type=_positive_int, default=None,
        help="Cap on admitted arrivals across the whole open-system run.",
    )
    run.add_argument(
        "--executor", default="serial", choices=list(EXECUTOR_CHOICES),
        help="Station-execution backend (wall-clock only; the transcript is "
        "executor-invariant).",
    )
    run.add_argument(
        "--shards", type=_non_negative_int, default=0,
        help="Station shards for the executor (0 = auto).",
    )
    run.add_argument(
        "--bit-backend", default="auto", choices=["auto", "python", "numpy"],
        help="Bit-storage backend for the filters (results are backend-invariant).",
    )
    run.add_argument(
        "--transport", default="sim", choices=list(TRANSPORT_CHOICES),
        help="Backhaul backend: sim = deterministic simulator, tcp = real "
        "localhost sockets with station worker processes (results and "
        "fault-free byte counts are transport-invariant).",
    )
    run.add_argument(
        "--topology", default=None, choices=list(TOPOLOGY_KINDS),
        help="Deployment topology override: star = the classic flat "
        "single-hop star, two-tier = regional aggregators between the "
        "center and the stations (see docs/topology.md).",
    )
    run.add_argument(
        "--regions", type=_positive_int, default=None,
        help="Two-tier only: number of regional aggregators; must not "
        "exceed the station count.",
    )
    run.add_argument(
        "--tenants", type=_positive_int, default=None,
        help="Serve N independent tenant query streams round-robin within "
        "each round (closed-loop drives only); the result reports "
        "per-tenant precision/latency/bytes.",
    )
    run.add_argument(
        "--fault-profile", default=None, choices=list(FAULT_PROFILE_CHOICES),
        help="Override the scenario's paired fault profile.",
    )
    run.add_argument(
        "--allow-partial", action="store_true",
        help="Let simulation-drive rounds survive station timeouts.",
    )
    run.add_argument(
        "--json-dir", default=None,
        help="Also write the run as BENCH_workload_<scenario>.json under this directory.",
    )

    return parser


def _run_compare(args: argparse.Namespace) -> str:
    dataset = build_dataset(
        DatasetSpec(
            users_per_category=args.users_per_category,
            station_count=args.stations,
            days=args.days,
            intervals_per_day=args.intervals_per_day,
            noise_level=args.noise,
            seed=args.seed,
        )
    )
    workload = build_query_workload(dataset, args.queries, args.epsilon, seed=args.seed)
    config = DIMatchingConfig(
        epsilon=args.epsilon,
        sample_count=args.sample_count,
        bit_backend=args.bit_backend,
    )
    # The simulation-level override applies the chosen executor and fault
    # profile uniformly to every method (the naive/local baselines carry no
    # DIMatchingConfig); library users can instead set
    # DIMatchingConfig.executor / fault_profile / net_seed per protocol.
    result = run_comparison(
        dataset,
        workload,
        config,
        methods=tuple(args.methods),
        executor=args.executor,
        shard_count=args.shards,
        fault_plan=args.fault_profile,
        net_seed=args.net_seed,
        allow_partial=args.allow_partial,
    )
    faulty = args.fault_profile != "none"
    rows = []
    for method in args.methods:
        outcome = result.outcome(method)
        relative = result.relative_costs(method, baseline=args.methods[0])
        row = [
            method,
            round(outcome.metrics.precision, 4),
            round(outcome.metrics.recall, 4),
            outcome.costs.communication_bytes,
            round(relative["communication"], 4),
            round(outcome.costs.total_time_s, 4),
        ]
        if faulty:
            row.extend(
                [
                    outcome.costs.retransmit_count,
                    round(outcome.costs.goodput_fraction, 4),
                    outcome.costs.lost_station_count,
                ]
            )
        rows.append(row)
    header = (
        f"dataset: {dataset.user_count} users, {dataset.station_count} stations, "
        f"{dataset.pattern_length} intervals; queries: {result.query_count} "
        f"({result.combined_pattern_count} combined patterns); "
        f"ground truth: {len(result.ground_truth)} users"
    )
    if faulty:
        header += f"; faults: {args.fault_profile} (net seed {args.net_seed})"
    columns = ["method", "precision", "recall", "comm bytes", "comm vs first", "time s"]
    if faulty:
        columns += ["retransmits", "goodput", "lost stations"]
    table = render_table(columns, rows)
    return f"{header}\n{table}"


def _run_table2(args: argparse.Namespace) -> str:
    rows = effectiveness_study(
        day_count=args.days,
        cohort_size=args.cohort_size,
        epsilon=args.epsilon,
        seed=args.seed,
    )
    return format_effectiveness_table(rows)


def _run_convergence(args: argparse.Namespace) -> str:
    results = convergence_study(
        sample_counts=args.samples, group_count=args.groups, seed=args.seed
    )
    return format_convergence_table(results)


def _run_figure(args: argparse.Namespace) -> str:
    if args.name == "fig1a":
        series = category_mean_series(days=2, bin_hours=6, seed=args.seed)
        return render_line_chart(
            series,
            x_values=list(range(len(next(iter(series.values()))))),
            title="Figure 1(a): normalised category patterns",
        )
    if args.name == "fig3":
        series = accumulated_category_series(days=7, bin_hours=6, seed=args.seed)
        return render_line_chart(
            series,
            x_values=list(range(len(next(iter(series.values()))))),
            title="Figure 3: accumulated category patterns",
        )
    dataset = build_dataset(
        DatasetSpec(
            users_per_category=30,
            station_count=6,
            noise_level=0,
            replicated_decoys_per_category=0,
            colocation_probability=0.05,
            seed=args.seed,
        )
    )
    counts = local_similarity_counts(dataset, epsilon=0, max_pairs=2000)
    return render_cdf(
        [float(c) for c in counts],
        title="Figure 1(b): CDF of similar local patterns among similar global pairs",
    )


def _run_workload_list(_args: argparse.Namespace) -> str:
    rows = []
    for name in scenario_names():
        spec = SCENARIOS[name]
        churn = (
            "static"
            if spec.churn.is_static
            else f"leave {spec.churn.leave_probability:g} / join {spec.churn.join_probability:g}"
        )
        stations = spec.effective_station_count
        if spec.source is not None and spec.source.kind == "streaming":
            # Streaming sources declare the city without materializing it.
            stations = f"{stations} (streaming)"
        rows.append(
            [
                name,
                spec.rounds,
                stations,
                spec.arrival.kind,
                churn,
                f"{spec.mix.zipf_s:g}",
                spec.fault_profile,
                spec.seed,
            ]
        )
    columns = [
        "scenario", "rounds", "stations", "arrival", "churn", "zipf s", "faults", "seed",
    ]
    table = render_table(columns, rows)
    descriptions = "\n".join(
        f"  {name}: {SCENARIOS[name].description}" for name in scenario_names()
    )
    return f"{table}\n{descriptions}"


def _run_workload_run(args: argparse.Namespace) -> str:
    open_flags = (
        args.arrival_rate is not None
        or args.ramp is not None
        or args.arrival_process is not None
        or args.max_arrivals is not None
    )
    drive = args.drive or ("open" if open_flags else "simulation")
    if open_flags and drive != "open":
        raise SystemExit(
            "workload run: --arrival-rate/--ramp/--arrival-process/"
            "--max-arrivals apply only to --drive open"
        )
    if drive == "session" and (args.executor != "serial" or args.shards):
        raise SystemExit(
            "workload run: --executor/--shards apply only to the simulation "
            "and open drives (the session drive matches in-process)"
        )
    spec = get_scenario(args.scenario)
    overrides: dict[str, object] = {}
    if drive == "open":
        base = spec.offered
        if base is None and args.arrival_rate is None:
            raise SystemExit(
                f"workload run: scenario {args.scenario!r} declares no "
                "offered load; pass --arrival-rate"
            )
        if open_flags or base is None:
            try:
                overrides["offered"] = OfferedLoad(
                    rate_qps=(
                        args.arrival_rate
                        if args.arrival_rate is not None
                        else base.rate_qps
                    ),
                    process=args.arrival_process
                    or (base.process if base else "poisson"),
                    ramp=(
                        args.ramp
                        if args.ramp is not None
                        else (base.ramp if base else (RampPhase("plateau", 30.0),))
                    ),
                    max_arrivals=(
                        args.max_arrivals
                        if args.max_arrivals is not None
                        else (base.max_arrivals if base else 512)
                    ),
                )
            except ConfigurationError as error:
                raise SystemExit(f"workload run: {error}")
    if args.rounds is not None:
        overrides["rounds"] = args.rounds
    source = spec.source
    streaming = source is not None and source.kind == "streaming"
    if not streaming and (
        args.users_per_station is not None or args.max_resident is not None
    ):
        raise SystemExit(
            "workload run: --users-per-station/--max-resident apply only to "
            "streaming-source scenarios (this scenario materializes an eager "
            "dataset; use --users-per-category)"
        )
    source_updates: dict[str, object] = {}
    if args.stations is not None:
        if source is not None:
            # The cohort shape lives in the SourceSpec; scaling the city
            # clamps the per-round touch window with it.
            source_updates["station_count"] = args.stations
            if (
                source.stations_per_round is not None
                and source.stations_per_round > args.stations
            ):
                source_updates["stations_per_round"] = args.stations
        else:
            overrides["station_count"] = args.stations
        # Scaling a churny scenario below its floor clamps the floor with it.
        if spec.churn.min_active > args.stations:
            overrides["churn"] = replace(spec.churn, min_active=args.stations)
    users_per_station = args.users_per_station
    if args.users_per_category is not None:
        if streaming:
            warnings.warn(
                "workload run: --users-per-category on a streaming-source "
                "scenario is a deprecated alias for --users-per-station",
                DeprecationWarning,
                stacklevel=2,
            )
            if (
                users_per_station is not None
                and users_per_station != args.users_per_category
            ):
                raise SystemExit(
                    "workload run: the population density is spelled twice "
                    f"and disagrees: --users-per-category "
                    f"{args.users_per_category} vs --users-per-station "
                    f"{users_per_station}"
                )
            users_per_station = args.users_per_category
        else:
            overrides["users_per_category"] = args.users_per_category
    if users_per_station is not None:
        source_updates["users_per_station"] = users_per_station
    if args.max_resident is not None:
        source_updates["max_resident"] = args.max_resident
    if source_updates:
        try:
            overrides["source"] = source.with_updates(**source_updates)
        except ConfigurationError as error:
            raise SystemExit(f"workload run: {error}")
    if args.seed is not None:
        overrides["seed"] = args.seed
    if args.fault_profile is not None:
        overrides["fault_profile"] = args.fault_profile
    if args.allow_partial:
        overrides["allow_partial"] = True
    if args.regions is not None and (args.topology or "two-tier") != "two-tier":
        raise SystemExit(
            "workload run: --regions applies only to --topology two-tier"
        )
    if args.tenants is not None:
        if drive == "open":
            raise SystemExit(
                "workload run: --tenants applies only to the closed-loop "
                "drives (simulation/session)"
            )
        # Synthesized tenants share the scenario's query mix; each still
        # samples its own independent seeded stream.
        overrides["tenants"] = tuple(
            TenantSpec(f"tenant-{index}", spec.mix) for index in range(args.tenants)
        )
    if (
        args.topology is not None
        or args.regions is not None
        or args.tenants is not None
    ):
        base_topology = spec.topology
        kind = args.topology or (
            base_topology.kind
            if base_topology is not None
            else ("two-tier" if args.regions is not None else "star")
        )
        stream_count = max(
            1, len(overrides.get("tenants", spec.tenants))  # type: ignore[arg-type]
        )
        try:
            if kind == "star":
                overrides["topology"] = (
                    None
                    if stream_count == 1
                    else TopologySpec(kind="star", tenant_count=stream_count)
                )
            else:
                overrides["topology"] = TopologySpec(
                    kind="two-tier",
                    regions=(
                        args.regions
                        if args.regions is not None
                        else (
                            base_topology.regions
                            if base_topology is not None
                            and base_topology.is_hierarchical
                            else 2
                        )
                    ),
                    tenant_count=stream_count,
                )
        except ConfigurationError as error:
            raise SystemExit(f"workload run: {error}")
    if overrides:
        try:
            spec = spec.with_updates(**overrides)
        except ConfigurationError as error:
            raise SystemExit(f"workload run: {error}")

    result = run_workload(
        spec,
        drive=drive,
        executor=args.executor,
        shard_count=args.shards,
        bit_backend=args.bit_backend,
        transport=args.transport,
    )

    faulty = spec.fault_profile != "none"
    open_run = drive == "open"
    columns = ["round"]
    if open_run:
        columns += ["phase", "arrival s"]
    columns += [
        "queries", "stations", "joined", "left",
        "down B", "up B", "latency s",
    ]
    if open_run:
        columns += ["queue s"]
    columns += ["precision", "recall"]
    if faulty:
        columns += ["retransmits", "goodput", "lost"]
    rows = []
    for metrics in result.rounds:
        row = [metrics.round_index]
        if open_run:
            row += [metrics.phase, round(metrics.arrival_s, 3)]
        row += [
            metrics.query_count,
            metrics.active_station_count,
            len(metrics.joined),
            len(metrics.left),
            metrics.downlink_bytes,
            metrics.uplink_bytes,
            round(metrics.latency_s, 4),
        ]
        if open_run:
            row += [round(metrics.queue_delay_s, 4)]
        row += [
            round(metrics.precision, 4),
            round(metrics.recall, 4),
        ]
        if faulty:
            row += [
                metrics.retransmit_count,
                round(metrics.goodput_fraction, 4),
                metrics.lost_station_count,
            ]
        rows.append(row)
    header = (
        f"scenario: {spec.name} (seed {spec.seed}, drive {drive}, "
        f"method {spec.method}, faults {spec.fault_profile}); "
        f"{result.round_count} rounds, {result.total_queries} queries, "
        f"{result.total_bytes} bytes"
    )
    if spec.topology is not None and spec.topology.is_hierarchical:
        header += f"; topology two-tier ({spec.topology.regions} regions)"
    if spec.tenants:
        header += f"; {len(spec.tenants)} tenants"
    if open_run and spec.offered is not None:
        header += (
            f"; offered {spec.offered.rate_qps:g} qps "
            f"({spec.offered.process}, {len(spec.offered.ramp)} phase"
            f"{'s' if len(spec.offered.ramp) != 1 else ''})"
        )
    summary_lines = []
    for name in ("bytes", "latency_s", "precision", "goodput"):
        stat = result.cumulative[name]
        summary_lines.append(
            f"  {name}: mean {stat.mean:.4g}  p50 {stat.p50:.4g}  "
            f"p90 {stat.p90:.4g}  p99 {stat.p99:.4g}  max {stat.maximum:.4g}"
        )
    for tenant_window in result.tenants:
        summary_lines.append(
            f"  tenant {tenant_window.name}: {tenant_window.round_count} rounds, "
            f"{tenant_window.query_count} queries, "
            f"{tenant_window.total_bytes} bytes, "
            f"precision mean {tenant_window.precision.mean:.4g}, "
            f"latency p50 {tenant_window.latency.p50:.4g}"
        )
    for window in result.phases:
        if window.latency is None:
            summary_lines.append(
                f"  phase {window.label}: offered {window.offered_qps:g} qps, "
                "no arrivals"
            )
            continue
        summary_lines.append(
            f"  phase {window.label}: offered {window.offered_qps:g} qps, "
            f"achieved {window.achieved_qps:.3g} qps, "
            f"latency p50 {window.latency.p50:.4g} p99 {window.latency.p99:.4g}, "
            f"queue max {window.queue_delay.maximum:.4g}"
        )
    output = f"{header}\n{render_table(columns, rows)}\n" + "\n".join(summary_lines)
    if args.json_dir is not None:
        from repro.evaluation.benchjson import workload_payload, write_bench_json

        path = write_bench_json(
            args.json_dir,
            f"workload_{spec.name.replace('-', '_')}",
            workload_payload(result),
        )
        output += f"\nwrote {path}"
    return output


def _run_workload(args: argparse.Namespace) -> str:
    if args.workload_command == "list":
        return _run_workload_list(args)
    return _run_workload_run(args)


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point: parse arguments, run the requested experiment, print its report."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    runners = {
        "compare": _run_compare,
        "table2": _run_table2,
        "convergence": _run_convergence,
        "figure": _run_figure,
        "workload": _run_workload,
    }
    output = runners[args.command](args)
    print(output)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via tests calling main()
    sys.exit(main())
