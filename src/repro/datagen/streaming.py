"""Lazy, memory-bounded station-batch generation.

:func:`repro.datagen.scale.build_scale_dataset` already builds large datasets
fast, but it materializes *every* station's local patterns up front — a
million-user scenario holds the whole city in RAM even when a drive only ever
touches a handful of stations per round.  :class:`StreamingStationSource` is
the open-system answer: each station's batch of local patterns is generated on
demand, kept in a bounded LRU-resident set, and retired (or evicted) when the
drive moves on.  A scenario can therefore *declare* 1M+ users while the
resident set stays at ``max_resident`` stations.

The layout is arithmetic, so any station's batch is computable independently
in O(users_per_station × fragments_per_user):

* user ``u`` has home station ``u % station_count`` — station ``s`` owns users
  ``s, s + S, s + 2S, …``;
* fragment ``j`` of every user lands on ``(home + offset_j) % S``, with the
  global offset table drawn once from ``derive_seed(seed, "stream-offsets")``
  — so the fragments stored *at* station ``t`` come from the users homed at
  ``(t - offset_j) % S``, no global scan required;
* each user's activity (phase, value, active slots) comes from a private
  ``random.Random(derive_seed(seed, "stream-user", user_id))`` stream.

Everything derives from the source seed through
:func:`repro.utils.rng.derive_seed` and the standard-library :mod:`random`
module, so batches are identical across processes, platforms, access orders
and NumPy availability — the same determinism contract as the eager builders.
"""

from __future__ import annotations

import random
import warnings
from collections import OrderedDict
from typing import Iterable, Sequence

from repro.datagen.mobility import UserMobility
from repro.datagen.scale import SCALE_CATEGORY
from repro.datagen.source import StationSourceBase
from repro.datagen.workload import DistributedDataset, UserProfile
from repro.timeseries.pattern import LocalPattern, PatternSet
from repro.timeseries.query import QueryPattern
from repro.utils.rng import derive_seed
from repro.utils.validation import require_positive


class StreamingStationSource(StationSourceBase):
    """Seed-derived station batches, generated lazily under a resident cap.

    ``station_batch`` (and the :class:`DistributedDataset`-shaped alias
    ``local_patterns_at``) builds a station's local patterns on first touch
    and serves later touches from an LRU cache of at most ``max_resident``
    stations; ``retire`` drops a station explicitly once a drive is done with
    it.  ``built_count`` / ``eviction_count`` expose the generate/retire
    traffic so tests can pin the bounded-resident-set claim.
    """

    def __init__(
        self,
        station_count: int,
        users_per_station: int = 1,
        pattern_length: int = 24,
        intervals_per_day: int = 24,
        fragments_per_user: int = 2,
        active_intervals: int = 6,
        seed: int = 7,
        max_resident: int = 64,
    ) -> None:
        require_positive(station_count, "station_count")
        require_positive(users_per_station, "users_per_station")
        require_positive(pattern_length, "pattern_length")
        require_positive(intervals_per_day, "intervals_per_day")
        require_positive(fragments_per_user, "fragments_per_user")
        require_positive(active_intervals, "active_intervals")
        require_positive(max_resident, "max_resident")
        if fragments_per_user > station_count:
            raise ValueError(
                f"fragments_per_user ({fragments_per_user}) cannot exceed "
                f"station_count ({station_count})"
            )
        if active_intervals > pattern_length:
            raise ValueError(
                f"active_intervals ({active_intervals}) cannot exceed "
                f"pattern_length ({pattern_length})"
            )
        self._station_count = station_count
        self._users_per_station = users_per_station
        self._pattern_length = pattern_length
        self._intervals_per_day = intervals_per_day
        self._fragments_per_user = fragments_per_user
        self._active_intervals = active_intervals
        self._seed = seed
        self._max_resident = max_resident
        self._station_ids = [f"s{index:05d}" for index in range(station_count)]
        self._station_index = {sid: i for i, sid in enumerate(self._station_ids)}
        # Global fragment-offset table: one draw, shared by every user, so
        # "who stores at station t" is pure arithmetic.
        offset_rng = random.Random(derive_seed(seed, "stream-offsets", station_count))
        offsets = [0]
        candidates = list(range(1, station_count))
        while len(offsets) < fragments_per_user:
            offsets.append(candidates.pop(offset_rng.randrange(len(candidates))))
        self._offsets = tuple(offsets)
        self._resident: "OrderedDict[str, dict[str, LocalPattern]]" = OrderedDict()
        self._built = 0
        self._evicted = 0

    # -- identity ---------------------------------------------------------------

    @property
    def station_ids(self) -> list[str]:
        """All station identifiers (the full declared city, never resident)."""
        return list(self._station_ids)

    @property
    def user_count(self) -> int:
        """Total declared users — none of them resident until touched."""
        return self._station_count * self._users_per_station

    @property
    def pattern_length(self) -> int:
        """Number of intervals in every pattern."""
        return self._pattern_length

    def user_ids_for(self, station_id: str) -> list[str]:
        """The users homed at ``station_id`` (who anchor fragment 0 there)."""
        home = self._station_index[station_id]
        return [
            f"u{home + step * self._station_count:07d}"
            for step in range(self._users_per_station)
        ]

    # -- per-user generation (no station state touched) -------------------------

    def fragments_of(self, user_id: str) -> list[LocalPattern]:
        """All local fragments of one user, derived without any station batch."""
        user_index = int(user_id[1:])
        if not 0 <= user_index < self.user_count:
            raise KeyError(f"unknown user {user_id!r}")
        home = user_index % self._station_count
        rng = random.Random(derive_seed(self._seed, "stream-user", user_id))
        phase = rng.randrange(self._pattern_length)
        base_value = 1 + rng.randrange(7)
        slots = [
            (phase + step) % self._pattern_length
            for step in range(self._active_intervals)
        ]
        per_fragment = max(1, self._active_intervals // self._fragments_per_user)
        fragments: list[LocalPattern] = []
        for fragment_index, offset in enumerate(self._offsets):
            begin = fragment_index * per_fragment
            end = (
                self._active_intervals
                if fragment_index == len(self._offsets) - 1
                else min(self._active_intervals, begin + per_fragment)
            )
            values = [0] * self._pattern_length
            for slot in slots[begin:end]:
                values[slot] = base_value
            if not any(values):
                continue
            station_id = self._station_ids[(home + offset) % self._station_count]
            fragments.append(LocalPattern(user_id, values, station_id))
        return fragments

    def query_for(self, user_id: str) -> QueryPattern:
        """A query whose local patterns are ``user_id``'s fragments.

        Derived in O(fragments) from the user's seed stream alone — asking for
        a query never builds (or touches) any station batch.
        """
        return QueryPattern(f"q-{user_id}", tuple(self.fragments_of(user_id)))

    def sample_queries(
        self, query_count: int, seed: "int | None" = None
    ) -> list[QueryPattern]:
        """Deterministically sample ``query_count`` users as exemplar queries.

        The draw derives from the *source's own* seed stream by default, so
        differently-seeded sources never silently share query draws; pass
        ``seed`` only to decouple the sample from the source seed.
        """
        require_positive(query_count, "query_count")
        if query_count > self.user_count:
            raise ValueError(
                f"query_count ({query_count}) exceeds the declared "
                f"{self.user_count} users"
            )
        base = self._seed if seed is None else seed
        rng = random.Random(derive_seed(base, "stream-queries", query_count))
        chosen = rng.sample(range(self.user_count), query_count)
        return [self.query_for(f"u{index:07d}") for index in sorted(chosen)]

    # -- exemplar hooks (the engine-facing StationSource surface) ----------------

    @property
    def exemplar_count(self) -> int:
        """Every declared user is addressable as an exemplar query."""
        return self.user_count

    def exemplar_query(self, index: int) -> QueryPattern:
        """The ``index``-th declared user's own fragments as a query.

        O(fragments) from the user's seed stream — asking for an exemplar
        never builds (or touches) any station batch.
        """
        if not 0 <= index < self.user_count:
            raise IndexError(
                f"exemplar index {index} out of range for {self.user_count} users"
            )
        return self.query_for(f"u{index:07d}")

    # -- lazy station batches ----------------------------------------------------

    def _build_batch(self, station_id: str) -> dict[str, LocalPattern]:
        target = self._station_index[station_id]
        batch: dict[str, LocalPattern] = {}
        # Fragment j at station `target` comes from users homed at
        # (target - offset_j) mod S — arithmetic, not a scan.
        for offset in self._offsets:
            home = (target - offset) % self._station_count
            for step in range(self._users_per_station):
                user_id = f"u{home + step * self._station_count:07d}"
                for fragment in self.fragments_of(user_id):
                    if fragment.station_id == station_id:
                        batch[user_id] = fragment
        return batch

    def station_batch(self, station_id: str) -> dict[str, LocalPattern]:
        """The local patterns stored at ``station_id`` (built lazily, LRU-cached)."""
        if station_id not in self._station_index:
            raise KeyError(f"unknown station {station_id!r}")
        if station_id in self._resident:
            self._resident.move_to_end(station_id)
            return self._resident[station_id]
        batch = self._build_batch(station_id)
        self._built += 1
        self._resident[station_id] = batch
        while len(self._resident) > self._max_resident:
            self._resident.popitem(last=False)
            self._evicted += 1
        return batch

    def local_patterns_at(self, station_id: str) -> PatternSet:
        """:class:`DistributedDataset`-shaped accessor over the lazy batches."""
        return PatternSet(self.station_batch(station_id).values())

    def retire(self, station_id: str) -> bool:
        """Drop a station's batch from the resident set; True if it was held."""
        if station_id in self._resident:
            del self._resident[station_id]
            return True
        return False

    @property
    def resident_count(self) -> int:
        """Stations currently held in the resident set (≤ ``max_resident``)."""
        return len(self._resident)

    @property
    def resident_cap(self) -> int:
        """The LRU residency bound this source was configured with."""
        return self._max_resident

    @property
    def built_count(self) -> int:
        """How many station batches were generated (cache misses)."""
        return self._built

    @property
    def eviction_count(self) -> int:
        """How many resident batches the LRU cap pushed out."""
        return self._evicted

    # -- eager bridge ------------------------------------------------------------

    def materialize(
        self, station_ids: "Sequence[str] | None" = None
    ) -> DistributedDataset:
        """Deprecated bridge: an eager :class:`DistributedDataset` snapshot.

        .. deprecated::
            The facade and the workload engine consume streaming sources
            directly through the :class:`repro.datagen.source.StationSource`
            boundary (``Cluster(spec, source=...)`` /
            ``Cluster.adopt(source=...)``); materializing defeats the
            bounded-resident-set contract.  Only the ``station_ids``-subset
            form remains useful for offline inspection.
        """
        warnings.warn(
            "StreamingStationSource.materialize() is deprecated: pass the "
            "source itself to Cluster(spec, source=...) / Cluster.adopt("
            "source=...) instead of materializing it into an eager dataset",
            DeprecationWarning,
            stacklevel=2,
        )
        return self._materialize(station_ids)

    def _materialize(
        self, station_ids: "Sequence[str] | None" = None
    ) -> DistributedDataset:
        """The eager snapshot itself, warning-free for internal/test use.

        Only the named stations' batches are built (all of them when
        ``station_ids`` is None), and every user with a fragment on an
        included station is profiled.  Fragments pointing at excluded
        stations are left out, exactly as a drive that never contacts those
        cells would see the city.
        """
        chosen = list(station_ids) if station_ids is not None else self.station_ids
        for station_id in chosen:
            if station_id not in self._station_index:
                raise KeyError(f"unknown station {station_id!r}")
        local: dict[str, dict[str, LocalPattern]] = {}
        users: dict[str, UserProfile] = {}
        for station_id in chosen:
            batch = self._build_batch(station_id)
            local[station_id] = dict(batch)
            for user_id in batch:
                if user_id not in users:
                    users[user_id] = self._profile_of(user_id)
        return DistributedDataset(
            station_ids=chosen,
            users=users,
            local_patterns=local,
            pattern_length=self._pattern_length,
            intervals_per_day=self._intervals_per_day,
        )

    def _profile_of(self, user_id: str) -> UserProfile:
        fragments = self.fragments_of(user_id)
        stations = [fragment.station_id for fragment in fragments]
        mobility = UserMobility(
            user_id=user_id,
            home_station=stations[0],
            work_station=stations[min(1, len(stations) - 1)],
            other_station=stations[-1],
        )
        return UserProfile(
            user_id=user_id, category_name=SCALE_CATEGORY, mobility=mobility
        )


def iter_station_batches(
    source: StreamingStationSource, station_ids: "Iterable[str] | None" = None
) -> "Iterable[tuple[str, PatternSet]]":
    """Generate-encode-retire iteration: yield each station's batch, then retire it.

    The canonical bounded-memory sweep over a declared city: at any point at
    most the in-flight station (plus whatever the caller pinned) is resident.
    """
    for station_id in station_ids if station_ids is not None else source.station_ids:
        yield station_id, source.local_patterns_at(station_id)
        source.retire(station_id)
