"""City model: a grid of base-station sites covering a rectangular area.

The paper's city covers roughly 8700 km² with 5120 base stations.  The synthetic
city is a scaled-down regular grid; what matters for the algorithms is only that
there are multiple stations and that users attach to different stations at different
hours, which the mobility model provides.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.utils.validation import require_positive


@dataclass(frozen=True)
class BaseStationSite:
    """A base-station cell site with an identifier and planar coordinates (km)."""

    station_id: str
    x_km: float
    y_km: float

    def distance_to(self, x_km: float, y_km: float) -> float:
        """Euclidean distance from this site to a point, in km."""
        return math.hypot(self.x_km - x_km, self.y_km - y_km)


class CityGrid:
    """A rectangular city covered by a regular grid of base stations."""

    def __init__(self, width_km: float = 30.0, height_km: float = 30.0, station_spacing_km: float = 10.0) -> None:
        require_positive(width_km, "width_km")
        require_positive(height_km, "height_km")
        require_positive(station_spacing_km, "station_spacing_km")
        self.width_km = float(width_km)
        self.height_km = float(height_km)
        self.station_spacing_km = float(station_spacing_km)
        self._sites: list[BaseStationSite] = []
        columns = max(1, int(round(width_km / station_spacing_km)))
        rows = max(1, int(round(height_km / station_spacing_km)))
        for row in range(rows):
            for column in range(columns):
                station_id = f"bs-{row:03d}-{column:03d}"
                x = (column + 0.5) * width_km / columns
                y = (row + 0.5) * height_km / rows
                self._sites.append(BaseStationSite(station_id, x, y))

    @property
    def sites(self) -> list[BaseStationSite]:
        """All base-station sites in row-major order."""
        return list(self._sites)

    @property
    def station_ids(self) -> list[str]:
        """All station identifiers in row-major order."""
        return [site.station_id for site in self._sites]

    @property
    def area_km2(self) -> float:
        """City area in square kilometres."""
        return self.width_km * self.height_km

    def __len__(self) -> int:
        return len(self._sites)

    def site(self, station_id: str) -> BaseStationSite:
        """Return the site with the given id."""
        for candidate in self._sites:
            if candidate.station_id == station_id:
                return candidate
        raise KeyError(f"unknown station id {station_id!r}")

    def nearest_station(self, x_km: float, y_km: float) -> BaseStationSite:
        """Return the site closest to the given point."""
        return min(self._sites, key=lambda site: site.distance_to(x_km, y_km))

    def __repr__(self) -> str:
        return (
            f"CityGrid(area={self.area_km2:.0f} km2, stations={len(self._sites)}, "
            f"spacing={self.station_spacing_km} km)"
        )
