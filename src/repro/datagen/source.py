"""The ``StationSource`` protocol: the datagen ↔ cluster dataset boundary.

The paper's center/station protocol never needs the whole city in memory —
each base station holds only its own fragments — so the facade's dataset
boundary is a *source of station batches*, not a materialized dataset.  This
module makes that boundary formal:

* :class:`StationSource` — a :class:`typing.Protocol` (``runtime_checkable``)
  naming the surface the :class:`repro.cluster.Cluster` facade and the
  workload engine consume: ``station_ids`` / ``station_batch`` /
  ``local_patterns_at`` / ``retire`` / ``pattern_length`` / ``user_count`` /
  ``resident_count`` plus the engine-facing exemplar-query hooks;
* :class:`StationSourceBase` — the ABC implementations subclass; it supplies
  the derivable half of the surface (``local_patterns_at`` from
  ``station_batch``, exemplar-label ground truth, unbounded-residency
  defaults) so a new source only writes the generation core;
* :class:`DatasetStationSource` — the trivial source wrapping an eagerly
  built :class:`repro.datagen.workload.DistributedDataset`: everything is
  resident, ``retire`` is a no-op, ground truth is the exact
  full-population ε-scan;
* :class:`SourceSpec` — the declarative spec (``kind="eager" | "streaming"``)
  that :class:`repro.cluster.ClusterSpec` and
  :class:`repro.workloads.WorkloadSpec` embed, collapsing the previously
  duplicated cohort-shape knobs into one place.

``StreamingStationSource`` (:mod:`repro.datagen.streaming`) is the bounded-
memory implementation: a scenario can declare 1M+ users while at most
``max_resident`` station batches are ever resident.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Mapping, Protocol, Sequence, runtime_checkable

from repro.core.exceptions import ConfigurationError
from repro.timeseries.pattern import LocalPattern, PatternSet
from repro.timeseries.query import QueryPattern

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.datagen.workload import DatasetSpec, DistributedDataset

#: The source kinds :class:`SourceSpec` can declare.
SOURCE_KINDS = ("eager", "streaming")


@runtime_checkable
class StationSource(Protocol):
    """What the cluster facade and workload engine require of a dataset.

    A source *declares* a city (``station_ids``, ``user_count``) and serves
    per-station batches on demand; whether batches are precomputed or
    generated lazily under a resident cap is the implementation's business.
    ``resident_cap`` is ``None`` for fully materialized sources and the LRU
    bound for streaming ones — the facade uses it to decide between eager
    node construction and on-demand publish/retire.
    """

    @property
    def station_ids(self) -> Sequence[str]: ...

    @property
    def user_count(self) -> int: ...

    @property
    def pattern_length(self) -> int: ...

    @property
    def resident_count(self) -> int: ...

    @property
    def resident_cap(self) -> "int | None": ...

    def station_batch(self, station_id: str) -> Mapping[str, LocalPattern]: ...

    def local_patterns_at(self, station_id: str) -> PatternSet: ...

    def retire(self, station_id: str) -> bool: ...

    @property
    def exemplar_count(self) -> int: ...

    def exemplar_query(self, index: int) -> QueryPattern: ...

    def ground_truth(
        self, queries: Sequence[QueryPattern], epsilon: float
    ) -> frozenset[str]: ...


class StationSourceBase(abc.ABC):
    """ABC half of the :class:`StationSource` protocol.

    Subclasses implement the generation core (``station_ids`` /
    ``station_batch`` / ``user_count`` / ``pattern_length`` and the exemplar
    hooks); the base supplies the derivable rest.  Defaults model a fully
    materialized source: no resident cap, ``retire`` declines, ground truth
    is the exemplar-label set (every user named by a query's own fragments).
    """

    @property
    @abc.abstractmethod
    def station_ids(self) -> Sequence[str]:
        """All declared station identifiers, in canonical (publish) order."""

    @property
    @abc.abstractmethod
    def user_count(self) -> int:
        """Total declared users."""

    @property
    @abc.abstractmethod
    def pattern_length(self) -> int:
        """Number of intervals in every pattern."""

    @abc.abstractmethod
    def station_batch(self, station_id: str) -> Mapping[str, LocalPattern]:
        """The local patterns stored at ``station_id``, keyed by user."""

    @property
    @abc.abstractmethod
    def exemplar_count(self) -> int:
        """How many exemplar queries :meth:`exemplar_query` can serve."""

    @abc.abstractmethod
    def exemplar_query(self, index: int) -> QueryPattern:
        """The ``index``-th exemplar query (a known user's own fragments)."""

    def local_patterns_at(self, station_id: str) -> PatternSet:
        """:class:`DistributedDataset`-shaped accessor over station batches."""
        return PatternSet(self.station_batch(station_id).values())

    def retire(self, station_id: str) -> bool:
        """Drop a station's resident batch; materialized sources hold nothing."""
        return False

    @property
    def resident_count(self) -> int:
        """Station batches currently held resident."""
        return len(self.station_ids)

    @property
    def resident_cap(self) -> "int | None":
        """The residency bound, or ``None`` when the source is materialized."""
        return None

    def ground_truth(
        self, queries: Sequence[QueryPattern], epsilon: float
    ) -> frozenset[str]:
        """The users a perfect protocol run should surface for ``queries``.

        The base answer is the *exemplar-label* set — the users named by the
        queries' own fragments — which never scans the population and is
        exact whenever exemplar users are mutually ε-distinct (the streaming
        layout's regime).  Sources with full-population knowledge override
        with the exact ε-scan.
        """
        return frozenset(
            pattern.user_id for query in queries for pattern in query.local_patterns
        )


class DatasetStationSource(StationSourceBase):
    """The trivial source: an eagerly built dataset, everything resident.

    Wraps a :class:`repro.datagen.workload.DistributedDataset` so the facade
    can consume eager and streaming datasets through one boundary.  Exemplar
    queries enumerate the sorted non-decoy population (the same pool the
    workload engine's query sampler draws from); ground truth is the exact
    full-population ε-scan.
    """

    def __init__(self, dataset: "DistributedDataset") -> None:
        self._dataset = dataset
        self._exemplars = tuple(
            user_id
            for user_id in sorted(dataset.user_ids)
            if not dataset.profile(user_id).is_decoy
        )

    @property
    def dataset(self) -> "DistributedDataset":
        """The wrapped eager dataset."""
        return self._dataset

    @property
    def station_ids(self) -> Sequence[str]:
        return tuple(self._dataset.station_ids)

    @property
    def user_count(self) -> int:
        return self._dataset.user_count

    @property
    def pattern_length(self) -> int:
        return self._dataset.pattern_length

    def station_batch(self, station_id: str) -> Mapping[str, LocalPattern]:
        return {
            pattern.user_id: pattern
            for pattern in self._dataset.local_patterns_at(station_id)
        }

    def local_patterns_at(self, station_id: str) -> PatternSet:
        # Delegate for identity: callers holding the dataset and callers
        # holding the source see the very same PatternSet values.
        return self._dataset.local_patterns_at(station_id)

    @property
    def exemplar_count(self) -> int:
        return len(self._exemplars)

    def exemplar_query(self, index: int) -> QueryPattern:
        user_id = self._exemplars[index]
        return QueryPattern(
            f"q-{user_id}", tuple(self._dataset.local_patterns_for(user_id))
        )

    def ground_truth(
        self, queries: Sequence[QueryPattern], epsilon: float
    ) -> frozenset[str]:
        from repro.evaluation.experiments import ground_truth_users

        return frozenset(ground_truth_users(self._dataset, queries, epsilon))


@dataclass(frozen=True)
class SourceSpec:
    """Declarative station-source parameters — the one cohort-shape spelling.

    ``kind="eager"`` compiles to a :class:`DatasetSpec` build wrapped in
    :class:`DatasetStationSource`; ``kind="streaming"`` builds a
    :class:`repro.datagen.streaming.StreamingStationSource` whose resident
    set is LRU-bounded at ``max_resident`` stations.  ``users_per_category``
    shapes eager cohorts (per occupation category), ``users_per_station``
    shapes streaming ones (per declared station); naming both non-default is
    a :class:`ConfigurationError`, not a silent precedence rule.
    """

    kind: str = "eager"
    station_count: int = 5
    users_per_category: int = 6
    users_per_station: int = 100
    days: int = 1
    intervals_per_day: int = 24
    noise_level: int = 0
    #: Streaming-only knobs (fragment layout + residency bound).
    fragments_per_user: int = 2
    active_intervals: int = 6
    max_resident: int = 64
    #: Streaming-only: how many stations each round touches (``None`` = all
    #: active).  The windowing knob that keeps a 10k-station round affordable.
    stations_per_round: "int | None" = None
    #: ``None`` inherits the deployment's derived seed at build time.
    seed: "int | None" = None

    def __post_init__(self) -> None:
        if self.kind not in SOURCE_KINDS:
            raise ConfigurationError(
                f"source kind must be one of {SOURCE_KINDS}, got {self.kind!r}"
            )
        for name in (
            "station_count",
            "users_per_category",
            "users_per_station",
            "days",
            "intervals_per_day",
            "fragments_per_user",
            "active_intervals",
            "max_resident",
        ):
            value = getattr(self, name)
            if not isinstance(value, int) or isinstance(value, bool) or value < 1:
                raise ConfigurationError(f"{name} must be a positive int, got {value!r}")
        if self.noise_level < 0:
            raise ConfigurationError(
                f"noise_level must be >= 0, got {self.noise_level!r}"
            )
        if self.kind == "streaming":
            if self.fragments_per_user > self.station_count:
                raise ConfigurationError(
                    f"fragments_per_user ({self.fragments_per_user}) cannot exceed "
                    f"station_count ({self.station_count})"
                )
            if self.active_intervals > self.pattern_length:
                raise ConfigurationError(
                    f"active_intervals ({self.active_intervals}) cannot exceed "
                    f"pattern_length ({self.pattern_length})"
                )
        if self.stations_per_round is not None:
            if self.kind != "streaming":
                raise ConfigurationError(
                    "stations_per_round is a streaming-source knob; "
                    f"kind={self.kind!r} touches every station"
                )
            if (
                not isinstance(self.stations_per_round, int)
                or isinstance(self.stations_per_round, bool)
                or not 1 <= self.stations_per_round <= self.station_count
            ):
                raise ConfigurationError(
                    f"stations_per_round must be in [1, {self.station_count}], "
                    f"got {self.stations_per_round!r}"
                )
        if self.seed is not None and (
            not isinstance(self.seed, int) or isinstance(self.seed, bool)
        ):
            raise ConfigurationError(f"seed must be an int or None, got {self.seed!r}")

    @property
    def pattern_length(self) -> int:
        """Intervals per pattern: ``days * intervals_per_day``."""
        return self.days * self.intervals_per_day

    @property
    def declared_user_count(self) -> int:
        """How many users the built source will declare."""
        if self.kind == "streaming":
            return self.station_count * self.users_per_station
        return self.dataset_spec().user_count

    def dataset_spec(self, default_seed: int = 7) -> "DatasetSpec":
        """The equivalent eager :class:`DatasetSpec` (eager sources only)."""
        if self.kind != "eager":
            raise ConfigurationError(
                f"a {self.kind!r} source has no eager DatasetSpec equivalent"
            )
        from repro.datagen.workload import DatasetSpec

        return DatasetSpec(
            users_per_category=self.users_per_category,
            station_count=self.station_count,
            days=self.days,
            intervals_per_day=self.intervals_per_day,
            noise_level=self.noise_level,
            seed=self.seed if self.seed is not None else default_seed,
        )

    def build(self, default_seed: int = 7) -> StationSource:
        """Construct the station source this spec declares."""
        if self.kind == "streaming":
            from repro.datagen.streaming import StreamingStationSource

            return StreamingStationSource(
                station_count=self.station_count,
                users_per_station=self.users_per_station,
                pattern_length=self.pattern_length,
                intervals_per_day=self.intervals_per_day,
                fragments_per_user=self.fragments_per_user,
                active_intervals=self.active_intervals,
                seed=self.seed if self.seed is not None else default_seed,
                max_resident=self.max_resident,
            )
        from repro.datagen.workload import build_dataset

        return DatasetStationSource(build_dataset(self.dataset_spec(default_seed)))

    def with_updates(self, **changes: object) -> "SourceSpec":
        """A copy with the named fields replaced (and re-validated)."""
        return replace(self, **changes)
