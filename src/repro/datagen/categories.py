"""Occupation categories with diurnal communication and mobility profiles.

The paper groups its 310-person ground-truth cohort into six occupation-based
categories whose communication patterns are periodic (daily) and mutually divisible
(Fig. 1a).  Each synthetic category defines:

* an hourly *activity level* (0..1) modulating communication intensity over a day;
* base intensities for the three attributes of Definition 1 (calls, duration,
  partners) at full activity;
* an hourly *place schedule* (home / work / other) that drives which base station
  records the activity, producing the incomplete per-station local patterns.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Sequence

from repro.utils.validation import require_non_negative

HOURS_PER_DAY = 24


class PlaceSlot(str, Enum):
    """Abstract place a user occupies during an hour; mapped to a concrete station per user."""

    HOME = "home"
    WORK = "work"
    OTHER = "other"


@dataclass(frozen=True)
class CategoryProfile:
    """A population category with its diurnal activity and mobility schedule."""

    name: str
    description: str
    hourly_activity: tuple[float, ...]
    place_schedule: tuple[PlaceSlot, ...]
    base_call_count: int
    base_call_duration: int
    base_partner_count: int

    def __post_init__(self) -> None:
        if len(self.hourly_activity) != HOURS_PER_DAY:
            raise ValueError(
                f"hourly_activity must have {HOURS_PER_DAY} entries, "
                f"got {len(self.hourly_activity)}"
            )
        if len(self.place_schedule) != HOURS_PER_DAY:
            raise ValueError(
                f"place_schedule must have {HOURS_PER_DAY} entries, "
                f"got {len(self.place_schedule)}"
            )
        for hour, level in enumerate(self.hourly_activity):
            if not 0.0 <= level <= 1.0:
                raise ValueError(
                    f"hourly_activity[{hour}] must be in [0, 1], got {level!r}"
                )
        require_non_negative(self.base_call_count, "base_call_count")
        require_non_negative(self.base_call_duration, "base_call_duration")
        require_non_negative(self.base_partner_count, "base_partner_count")

    def activity_at(self, hour_of_day: int) -> float:
        """Activity level (0..1) for the given hour of day."""
        return self.hourly_activity[hour_of_day % HOURS_PER_DAY]

    def place_at(self, hour_of_day: int) -> PlaceSlot:
        """Place slot occupied during the given hour of day."""
        return self.place_schedule[hour_of_day % HOURS_PER_DAY]


def _schedule(home_hours: Sequence[int], work_hours: Sequence[int]) -> tuple[PlaceSlot, ...]:
    """Build a 24-hour place schedule; hours in neither set map to OTHER."""
    slots = []
    home, work = set(home_hours), set(work_hours)
    for hour in range(HOURS_PER_DAY):
        if hour in work:
            slots.append(PlaceSlot.WORK)
        elif hour in home:
            slots.append(PlaceSlot.HOME)
        else:
            slots.append(PlaceSlot.OTHER)
    return tuple(slots)


def _activity(peaks: dict[int, float], base: float = 0.05) -> tuple[float, ...]:
    """Build a 24-hour activity curve from explicit peak hours on a low baseline."""
    return tuple(max(base, peaks.get(hour, base)) for hour in range(HOURS_PER_DAY))


def default_categories() -> list[CategoryProfile]:
    """The six synthetic occupation categories used throughout the reproduction."""
    office_worker = CategoryProfile(
        name="office_worker",
        description="9-to-6 office staff; communication peaks mid-morning and late afternoon.",
        hourly_activity=_activity(
            {8: 0.4, 9: 0.8, 10: 0.9, 11: 0.7, 12: 0.5, 14: 0.7, 15: 0.8, 16: 0.9, 17: 0.8, 18: 0.5, 20: 0.3, 21: 0.2}
        ),
        place_schedule=_schedule(home_hours=range(0, 8), work_hours=range(9, 18)),
        base_call_count=12,
        base_call_duration=28,
        base_partner_count=8,
    )
    student = CategoryProfile(
        name="student",
        description="University student; light daytime use, heavy evening use.",
        hourly_activity=_activity(
            {10: 0.3, 12: 0.5, 16: 0.4, 18: 0.6, 19: 0.8, 20: 0.9, 21: 0.9, 22: 0.7, 23: 0.4}
        ),
        place_schedule=_schedule(home_hours=list(range(0, 8)) + [22, 23], work_hours=range(9, 17)),
        base_call_count=8,
        base_call_duration=40,
        base_partner_count=6,
    )
    night_shift = CategoryProfile(
        name="night_shift",
        description="Night-shift worker; activity inverted relative to office workers.",
        hourly_activity=_activity(
            {0: 0.6, 1: 0.7, 2: 0.7, 3: 0.6, 4: 0.5, 5: 0.4, 14: 0.3, 15: 0.4, 16: 0.5, 17: 0.4}
        ),
        place_schedule=_schedule(home_hours=range(8, 16), work_hours=list(range(0, 7)) + [22, 23]),
        base_call_count=6,
        base_call_duration=16,
        base_partner_count=4,
    )
    retiree = CategoryProfile(
        name="retiree",
        description="Retired; modest, evenly spread daytime communication, stays near home.",
        hourly_activity=_activity(
            {9: 0.4, 10: 0.5, 11: 0.4, 15: 0.4, 16: 0.5, 17: 0.4, 19: 0.3}
        ),
        place_schedule=_schedule(home_hours=list(range(0, 9)) + list(range(12, 15)) + list(range(18, 24)), work_hours=[]),
        base_call_count=4,
        base_call_duration=20,
        base_partner_count=4,
    )
    field_sales = CategoryProfile(
        name="field_sales",
        description="Travelling salesperson; very heavy all-day communication across many cells.",
        hourly_activity=_activity(
            {8: 0.6, 9: 0.9, 10: 1.0, 11: 0.9, 12: 0.7, 13: 0.8, 14: 0.9, 15: 1.0, 16: 0.9, 17: 0.8, 18: 0.6, 19: 0.4}
        ),
        place_schedule=_schedule(home_hours=range(0, 7), work_hours=[9, 10, 14, 15, 16]),
        base_call_count=20,
        base_call_duration=24,
        base_partner_count=16,
    )
    service_worker = CategoryProfile(
        name="service_worker",
        description="Retail/service staff; moderate use with an evening peak, split shifts.",
        hourly_activity=_activity(
            {7: 0.3, 11: 0.4, 12: 0.5, 13: 0.4, 17: 0.5, 18: 0.6, 19: 0.7, 20: 0.6, 21: 0.4}
        ),
        place_schedule=_schedule(home_hours=list(range(0, 7)) + [23], work_hours=list(range(10, 14)) + list(range(17, 22))),
        base_call_count=10,
        base_call_duration=18,
        base_partner_count=8,
    )
    return [office_worker, student, night_shift, retiree, field_sales, service_worker]


def get_category(name: str) -> CategoryProfile:
    """Look up one of the default categories by name."""
    for category in default_categories():
        if category.name == name:
            return category
    known = ", ".join(c.name for c in default_categories())
    raise KeyError(f"unknown category {name!r}; known categories: {known}")
