"""Ground-truth cohort mirroring the paper's "Data set 2".

The paper's second dataset is a field study of 310 persons (March 28–31, 2009) whose
occupations are known, giving ground-truth category labels for the effectiveness
evaluation (Table II).  We reproduce it with a synthetic cohort of 310 users drawn
from the six default categories, one dataset per day, with the category label as
ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datagen.categories import default_categories
from repro.datagen.workload import DatasetSpec, DistributedDataset, build_dataset
from repro.utils.validation import require_non_negative, require_positive

#: Number of participants in the paper's field study.
PAPER_COHORT_SIZE = 310
#: The four study days reported in Table II.
PAPER_STUDY_DAYS = (
    "March 28th, 2009",
    "March 29th, 2009",
    "March 30th, 2009",
    "March 31st, 2009",
)


@dataclass(frozen=True)
class GroundTruthCohort:
    """A labelled cohort for one study day."""

    day_label: str
    dataset: DistributedDataset

    @property
    def labels(self) -> dict[str, str]:
        """Mapping user id -> ground-truth category name."""
        return {
            user_id: self.dataset.category_of(user_id) for user_id in self.dataset.user_ids
        }

    def members_of(self, category_name: str) -> set[str]:
        """Users whose ground-truth category is ``category_name``."""
        return set(self.dataset.users_in_category(category_name))


def build_ground_truth_cohort(
    day_index: int,
    cohort_size: int = PAPER_COHORT_SIZE,
    station_count: int = 8,
    intervals_per_day: int = 24,
    noise_level: int = 1,
    seed: int = 2009,
) -> GroundTruthCohort:
    """Build the labelled cohort for one of the four study days.

    Each day uses a different derived seed so day-to-day data differ (as real data
    would) while remaining reproducible.  The requested ``cohort_size`` is realized
    *exactly*: the base split ``cohort_size // categories`` goes to every category
    and the remainder is handed out one extra user per category in catalog order
    (with the paper's 310 persons over six categories: four categories of 52 and
    two of 51).  The old behavior rounded to equal-sized categories, so the
    realized cohort silently differed from the request (310 became 312).
    """
    require_non_negative(day_index, "day_index")
    require_positive(cohort_size, "cohort_size")
    categories = default_categories()
    base, remainder = divmod(cohort_size, len(categories))
    counts = tuple(
        base + (1 if index < remainder else 0) for index in range(len(categories))
    )
    spec = DatasetSpec(
        users_per_category=max(1, base),
        station_count=station_count,
        days=1,
        intervals_per_day=intervals_per_day,
        noise_level=noise_level,
        seed=seed + day_index,
        categories=tuple(categories),
        category_user_counts=counts,
    )
    dataset = build_dataset(spec)
    realized = sum(
        1 for user_id in dataset.user_ids if not dataset.profile(user_id).is_decoy
    )
    if realized != cohort_size:
        raise AssertionError(
            f"realized cohort ({realized}) != requested cohort_size ({cohort_size})"
        )
    day_label = (
        PAPER_STUDY_DAYS[day_index]
        if day_index < len(PAPER_STUDY_DAYS)
        else f"synthetic day {day_index}"
    )
    return GroundTruthCohort(day_label=day_label, dataset=dataset)
