"""Call Detail Records (CDR) and Cell Detail List (CDL) entries.

The paper's raw inputs are CDRs (mobile phone id, call type, opposite id, start time,
duration, station) and CDL entries (station id, location).  These record types and
the aggregation from raw records to per-interval :class:`CommunicationAttributes`
(Definition 1) are the lowest layer of the data substrate.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.timeseries.attributes import CommunicationAttributes
from repro.utils.validation import require_non_negative, require_positive


class CallType(str, Enum):
    """Direction of a call from the perspective of the recorded phone."""

    OUTGOING = "outgoing"
    INCOMING = "incoming"


@dataclass(frozen=True)
class CallDetailRecord:
    """One call event as recorded by the base station serving the caller."""

    caller_id: str
    callee_id: str
    station_id: str
    start_time_s: int
    duration_s: int
    call_type: CallType = CallType.OUTGOING

    def __post_init__(self) -> None:
        require_non_negative(self.start_time_s, "start_time_s")
        require_non_negative(self.duration_s, "duration_s")

    def size_bytes(self) -> int:
        """Serialized size of one CDR under the cost model."""
        from repro.utils.serialization import sizeof_id, sizeof_int

        return sizeof_id(3) + sizeof_int(2) + 1


@dataclass(frozen=True)
class CellDetailListEntry:
    """One CDL row: a base station and its location."""

    station_id: str
    x_km: float
    y_km: float


def aggregate_records_to_attributes(
    records: list[CallDetailRecord],
    user_id: str,
    interval_seconds: int,
    interval_count: int,
) -> list[CommunicationAttributes]:
    """Aggregate a user's CDRs into per-interval attributes (Definition 1 inputs).

    Only records where ``user_id`` is the caller are counted (the station serving the
    caller records the event, matching the paper's per-station bookkeeping).  Calls
    starting beyond the covered window are ignored.
    """
    require_positive(interval_seconds, "interval_seconds")
    require_positive(interval_count, "interval_count")
    call_counts = [0] * interval_count
    durations = [0] * interval_count
    partners: list[set[str]] = [set() for _ in range(interval_count)]
    for record in records:
        if record.caller_id != user_id:
            continue
        interval = record.start_time_s // interval_seconds
        if interval >= interval_count:
            continue
        call_counts[interval] += 1
        durations[interval] += record.duration_s
        partners[interval].add(record.callee_id)
    return [
        CommunicationAttributes(
            call_count=call_counts[i],
            call_duration=durations[i],
            partner_count=len(partners[i]),
        )
        for i in range(interval_count)
    ]
