"""Synthetic communication-data generation.

Two levels of fidelity are provided:

* :func:`generate_user_interval_values` produces a user's fused per-interval pattern
  values directly from the category profile (Definition 1 applied to synthetic
  attributes).  This is the fast path used by the workload builders and benchmarks.
* :class:`SyntheticCdrGenerator` produces individual call detail records which can
  then be aggregated through :func:`repro.datagen.cdr.aggregate_records_to_attributes`,
  exercising the full raw-data path used by the examples and integration tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datagen.categories import HOURS_PER_DAY, CategoryProfile, PlaceSlot
from repro.datagen.cdr import CallDetailRecord, CallType
from repro.timeseries.attributes import (
    AttributeWeights,
    CommunicationAttributes,
    communication_pattern_value,
)
from repro.utils.validation import require_non_negative, require_positive


def hour_of_day_for_interval(interval_index: int, intervals_per_day: int) -> int:
    """Map an interval index to an hour of day given the daily interval count."""
    require_positive(intervals_per_day, "intervals_per_day")
    position_in_day = interval_index % intervals_per_day
    return int(position_in_day * HOURS_PER_DAY / intervals_per_day) % HOURS_PER_DAY


def synthesize_interval_attributes(
    category: CategoryProfile,
    interval_index: int,
    intervals_per_day: int,
    rng: np.random.Generator,
) -> CommunicationAttributes:
    """Draw the three Definition-1 attributes for one interval from the category profile."""
    hour = hour_of_day_for_interval(interval_index, intervals_per_day)
    activity = category.activity_at(hour)
    return CommunicationAttributes(
        call_count=int(round(category.base_call_count * activity)),
        call_duration=int(round(category.base_call_duration * activity)),
        partner_count=int(round(category.base_partner_count * activity)),
    )


def apply_timing_jitter(
    values: list[int],
    rng: np.random.Generator,
    noise_level: int,
    operations_per_interval: float = 0.1,
) -> list[int]:
    """Perturb a pattern by moving units of activity between adjacent intervals.

    Real users of the same behavioural group make roughly the same calls but shifted
    slightly in time; modelling individual variation as *timing jitter* (rather than
    independent additive noise) keeps both the per-interval deviation and — crucially
    for the accumulated representation of Eq. (3) — the accumulated drift between two
    users of the same group bounded by a small multiple of ``noise_level``.
    """
    require_non_negative(noise_level, "noise_level")
    jittered = list(values)
    if noise_level == 0 or len(jittered) < 2:
        return jittered
    operations = max(1, int(len(jittered) * operations_per_interval * noise_level))
    for _ in range(operations):
        source = int(rng.integers(0, len(jittered)))
        if jittered[source] <= 0:
            continue
        step = 1 if rng.random() < 0.5 else -1
        target = source + step
        if not 0 <= target < len(jittered):
            continue
        jittered[source] -= 1
        jittered[target] += 1
    return jittered


def generate_user_interval_values(
    category: CategoryProfile,
    interval_count: int,
    intervals_per_day: int,
    rng: np.random.Generator,
    noise_level: int = 1,
    weights: AttributeWeights | None = None,
    place_offsets: dict[PlaceSlot, int] | None = None,
) -> list[int]:
    """Generate a user's fused pattern values for ``interval_count`` intervals.

    The values follow the category's periodic daily profile (Observation 1).  Each
    user deviates from the category mean by (a) timing jitter controlled by
    ``noise_level`` (units of activity shifted between adjacent intervals, see
    :func:`apply_timing_jitter`) and (b) optional per-place offsets
    (``place_offsets``), which the workload builder uses to split a category into
    "cliques" — sub-groups whose members are mutually ε-similar (for ε ≥ 2·noise)
    while members of different cliques are not.  This keeps the ε-similar set of any
    query small relative to the population, as in the paper's city-scale data.
    """
    require_positive(interval_count, "interval_count")
    require_non_negative(noise_level, "noise_level")
    values: list[int] = []
    for interval_index in range(interval_count):
        attributes = synthesize_interval_attributes(
            category, interval_index, intervals_per_day, rng
        )
        fused = communication_pattern_value(attributes, weights)
        if fused > 0 and place_offsets:
            hour = hour_of_day_for_interval(interval_index, intervals_per_day)
            fused += place_offsets.get(category.place_at(hour), 0)
        values.append(max(0, fused))
    return apply_timing_jitter(values, rng, noise_level)


@dataclass(frozen=True)
class CallGenerationSpec:
    """Parameters for raw CDR generation."""

    interval_seconds: int = 3600
    mean_call_duration_s: int = 90
    partner_pool_size: int = 40

    def __post_init__(self) -> None:
        require_positive(self.interval_seconds, "interval_seconds")
        require_positive(self.mean_call_duration_s, "mean_call_duration_s")
        require_positive(self.partner_pool_size, "partner_pool_size")


class SyntheticCdrGenerator:
    """Generates raw call detail records for one user following a category profile."""

    def __init__(self, spec: CallGenerationSpec | None = None) -> None:
        self._spec = spec or CallGenerationSpec()

    @property
    def spec(self) -> CallGenerationSpec:
        """The raw-generation parameters."""
        return self._spec

    def generate_for_user(
        self,
        user_id: str,
        category: CategoryProfile,
        station_for_interval: list[str],
        intervals_per_day: int,
        rng: np.random.Generator,
    ) -> list[CallDetailRecord]:
        """Generate CDRs for every interval, attributed to the serving station.

        ``station_for_interval`` gives the station the user is attached to in each
        interval (from the mobility model); its length determines the horizon.
        """
        records: list[CallDetailRecord] = []
        partner_pool = [f"partner-{user_id}-{index}" for index in range(self._spec.partner_pool_size)]
        for interval_index, station_id in enumerate(station_for_interval):
            attributes = synthesize_interval_attributes(
                category, interval_index, intervals_per_day, rng
            )
            call_count = attributes.call_count
            if call_count == 0:
                continue
            partner_count = max(1, min(attributes.partner_count, call_count))
            chosen_partners = rng.choice(len(partner_pool), size=partner_count, replace=False)
            interval_start = interval_index * self._spec.interval_seconds
            for call_index in range(call_count):
                callee = partner_pool[int(chosen_partners[call_index % partner_count])]
                offset = int(rng.integers(0, self._spec.interval_seconds))
                duration = max(
                    1,
                    int(
                        rng.poisson(
                            max(1, attributes.call_duration // max(1, call_count)) or 1
                        )
                    ),
                )
                records.append(
                    CallDetailRecord(
                        caller_id=user_id,
                        callee_id=callee,
                        station_id=station_id,
                        start_time_s=interval_start + offset,
                        duration_s=duration,
                        call_type=CallType.OUTGOING,
                    )
                )
        return records
