"""Synthetic city-scale mobile-network data generation.

The paper evaluates on a proprietary 1 TB CDR/CDL dataset (3.6 M users, 5120 base
stations, one year).  This package is the substitution: a deterministic synthetic
generator that reproduces the structural properties the algorithms rely on —
occupation categories with periodic diurnal profiles (Fig. 1a), per-user mobility
across a small set of base stations, and the resulting *incomplete* per-station local
patterns whose per-interval sums form the global pattern.
"""

from repro.datagen.categories import (
    CategoryProfile,
    PlaceSlot,
    default_categories,
    get_category,
)
from repro.datagen.cdr import (
    CallDetailRecord,
    CellDetailListEntry,
    aggregate_records_to_attributes,
)
from repro.datagen.city import BaseStationSite, CityGrid
from repro.datagen.generator import SyntheticCdrGenerator, generate_user_interval_values
from repro.datagen.ground_truth import GroundTruthCohort, build_ground_truth_cohort
from repro.datagen.mobility import UserMobility, assign_mobility
from repro.datagen.source import (
    DatasetStationSource,
    SourceSpec,
    StationSource,
    StationSourceBase,
)
from repro.datagen.streaming import StreamingStationSource, iter_station_batches
from repro.datagen.workload import (
    DatasetSpec,
    DistributedDataset,
    QueryWorkload,
    UserProfile,
    build_dataset,
    build_query_workload,
)

__all__ = [
    "CategoryProfile",
    "PlaceSlot",
    "default_categories",
    "get_category",
    "CallDetailRecord",
    "CellDetailListEntry",
    "aggregate_records_to_attributes",
    "BaseStationSite",
    "CityGrid",
    "SyntheticCdrGenerator",
    "generate_user_interval_values",
    "GroundTruthCohort",
    "build_ground_truth_cohort",
    "UserMobility",
    "assign_mobility",
    "StationSource",
    "StationSourceBase",
    "DatasetStationSource",
    "SourceSpec",
    "StreamingStationSource",
    "iter_station_batches",
    "DatasetSpec",
    "DistributedDataset",
    "QueryWorkload",
    "UserProfile",
    "build_dataset",
    "build_query_workload",
]
