"""User mobility: mapping abstract place slots to concrete base stations.

Each user is assigned a home station, a work station and an "other" station (errands,
leisure).  The category's hourly place schedule then determines which station records
the user's communication in each interval, producing the distributed incomplete local
patterns that motivate the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.datagen.categories import CategoryProfile, PlaceSlot
from repro.utils.validation import require_non_empty


@dataclass(frozen=True)
class UserMobility:
    """Concrete station assignment for one user's place slots."""

    user_id: str
    home_station: str
    work_station: str
    other_station: str

    def station_for(self, place: PlaceSlot) -> str:
        """Return the station that records activity happening at ``place``."""
        if place is PlaceSlot.HOME:
            return self.home_station
        if place is PlaceSlot.WORK:
            return self.work_station
        return self.other_station

    @property
    def visited_stations(self) -> list[str]:
        """Distinct stations the user can attach to, in slot order."""
        seen: dict[str, None] = {}
        for station in (self.home_station, self.work_station, self.other_station):
            seen.setdefault(station, None)
        return list(seen.keys())


def assign_mobility(
    user_id: str,
    category: CategoryProfile,
    station_ids: Sequence[str],
    rng: np.random.Generator,
    colocation_probability: float = 0.2,
) -> UserMobility:
    """Draw a station assignment for ``user_id``.

    ``colocation_probability`` is the chance that the work (and other) slot falls in
    the same cell as home — the paper's motivating case where one user's pattern is
    complete at a single station while another user's is split.
    """
    require_non_empty(station_ids, "station_ids")
    stations = list(station_ids)
    home = stations[int(rng.integers(0, len(stations)))]

    def draw_slot() -> str:
        """Colocate with home with the configured probability, else pick another cell."""
        if rng.random() < colocation_probability or len(stations) == 1:
            return home
        candidate = home
        while candidate == home:
            candidate = stations[int(rng.integers(0, len(stations)))]
        return candidate

    work = draw_slot()
    other = draw_slot()
    # The category is reserved for future mobility differentiation (e.g. field sales
    # visiting more cells); the current model keeps three slots for every category.
    _ = category
    return UserMobility(
        user_id=user_id,
        home_station=home,
        work_station=work,
        other_station=other,
    )
