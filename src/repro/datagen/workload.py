"""Workload construction: distributed datasets and query workloads.

A :class:`DistributedDataset` is the synthetic stand-in for the paper's base-station
storage: for every station, the local patterns of the users it served; the global
pattern of a user is the per-interval sum of their local fragments and is never
stored at any single station.  A :class:`QueryWorkload` is a batch of query patterns
(the "preferred customers" of the motivating call-package scenario).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from repro.datagen.categories import CategoryProfile, PlaceSlot, default_categories
from repro.datagen.city import CityGrid
from repro.datagen.generator import generate_user_interval_values, hour_of_day_for_interval
from repro.datagen.mobility import UserMobility, assign_mobility
from repro.timeseries.pattern import GlobalPattern, LocalPattern, Pattern, PatternSet
from repro.timeseries.query import QueryPattern
from repro.timeseries.similarity import pattern_epsilon_similar
from repro.utils.rng import make_rng
from repro.utils.validation import require_non_empty, require_non_negative, require_positive


@dataclass(frozen=True)
class UserProfile:
    """A synthetic subscriber: identity, ground-truth category, mobility and clique.

    ``clique_assignment`` records the (home, work, other) clique indices the user was
    drawn from; users sharing all three indices (and the category) have ε-similar
    global patterns.  ``is_decoy`` marks injected adversarial users (e.g. the
    over-splitting users of the paper's {3,4,5}×3 example) that should never be
    selected as query exemplars.
    """

    user_id: str
    category_name: str
    mobility: UserMobility
    clique_assignment: tuple[int, int, int] = (0, 0, 0)
    is_decoy: bool = False


@dataclass(frozen=True)
class DatasetSpec:
    """Parameters controlling synthetic dataset construction."""

    users_per_category: int = 25
    station_count: int = 8
    days: int = 1
    intervals_per_day: int = 24
    noise_level: int = 1
    colocation_probability: float = 0.2
    #: Number of per-place cliques each category is split into.  Members of the same
    #: clique triple are mutually ε-similar; different cliques differ by
    #: ``clique_value_gap`` per active interval (well beyond ε), which keeps the true
    #: match set of a query small relative to the population.
    cliques_per_place: int = 2
    #: Value offset between consecutive cliques (must exceed 2·noise + ε to separate).
    clique_value_gap: int = 6
    #: Injected "over-splitting" users per category whose fragment at each of two
    #: stations equals a full category-shaped pattern (the paper's over-matching
    #: false-positive case for plain Bloom filters).
    replicated_decoys_per_category: int = 2
    seed: int = 7
    categories: tuple[CategoryProfile, ...] = field(
        default_factory=lambda: tuple(default_categories())
    )
    #: Optional per-category regular-user counts, aligned with ``categories``.
    #: When set it overrides the uniform ``users_per_category`` — the knob that
    #: lets a cohort of a size not divisible by the category count be realized
    #: *exactly* (remainder categories get one extra user) instead of rounded.
    category_user_counts: tuple[int, ...] | None = None

    def __post_init__(self) -> None:
        require_positive(self.users_per_category, "users_per_category")
        require_positive(self.station_count, "station_count")
        require_positive(self.days, "days")
        require_positive(self.intervals_per_day, "intervals_per_day")
        require_non_negative(self.noise_level, "noise_level")
        require_positive(self.cliques_per_place, "cliques_per_place")
        require_non_negative(self.clique_value_gap, "clique_value_gap")
        require_non_negative(self.replicated_decoys_per_category, "replicated_decoys_per_category")
        require_non_empty(self.categories, "categories")
        if self.category_user_counts is not None:
            if len(self.category_user_counts) != len(self.categories):
                raise ValueError(
                    f"category_user_counts must have one entry per category "
                    f"({len(self.categories)}), got {len(self.category_user_counts)}"
                )
            for count in self.category_user_counts:
                require_non_negative(count, "category_user_counts entry")
            if sum(self.category_user_counts) <= 0:
                raise ValueError("category_user_counts must name at least one user")

    def regular_users_in(self, category_index: int) -> int:
        """Number of regular (non-decoy) users built for one category."""
        if self.category_user_counts is not None:
            return int(self.category_user_counts[category_index])
        return self.users_per_category

    @property
    def interval_count(self) -> int:
        """Total number of time intervals covered by each pattern."""
        return self.days * self.intervals_per_day

    @property
    def user_count(self) -> int:
        """Total number of synthetic users (regular users plus decoys)."""
        regular = sum(
            self.regular_users_in(index) for index in range(len(self.categories))
        )
        return regular + self.replicated_decoys_per_category * len(self.categories)


class DistributedDataset:
    """Local patterns distributed across base stations, with ground-truth metadata."""

    def __init__(
        self,
        station_ids: Sequence[str],
        users: Mapping[str, UserProfile],
        local_patterns: Mapping[str, Mapping[str, LocalPattern]],
        pattern_length: int,
        intervals_per_day: int,
    ) -> None:
        require_non_empty(station_ids, "station_ids")
        require_non_empty(users, "users")
        require_positive(pattern_length, "pattern_length")
        require_positive(intervals_per_day, "intervals_per_day")
        self._station_ids = list(station_ids)
        self._users = dict(users)
        self._local: dict[str, dict[str, LocalPattern]] = {
            station: dict(per_station) for station, per_station in local_patterns.items()
        }
        for station in self._local:
            if station not in self._station_ids:
                raise ValueError(f"local patterns reference unknown station {station!r}")
        self._pattern_length = int(pattern_length)
        self._intervals_per_day = int(intervals_per_day)
        self._global_cache: dict[str, GlobalPattern] = {}

    # -- basic accessors -------------------------------------------------------

    @property
    def station_ids(self) -> list[str]:
        """All base-station identifiers."""
        return list(self._station_ids)

    @property
    def user_ids(self) -> list[str]:
        """All subscriber identifiers."""
        return list(self._users.keys())

    @property
    def pattern_length(self) -> int:
        """Number of intervals in every pattern."""
        return self._pattern_length

    @property
    def intervals_per_day(self) -> int:
        """Intervals per day (period of the daily cycle)."""
        return self._intervals_per_day

    @property
    def user_count(self) -> int:
        """Number of subscribers."""
        return len(self._users)

    @property
    def station_count(self) -> int:
        """Number of base stations."""
        return len(self._station_ids)

    def profile(self, user_id: str) -> UserProfile:
        """Ground-truth profile of ``user_id``."""
        if user_id not in self._users:
            raise KeyError(f"unknown user {user_id!r}")
        return self._users[user_id]

    def category_of(self, user_id: str) -> str:
        """Ground-truth category name of ``user_id``."""
        return self.profile(user_id).category_name

    def users_in_category(self, category_name: str) -> list[str]:
        """All users whose ground-truth category is ``category_name``."""
        return [
            user_id
            for user_id, profile in self._users.items()
            if profile.category_name == category_name
        ]

    # -- pattern access --------------------------------------------------------

    def local_patterns_at(self, station_id: str) -> PatternSet:
        """Pattern set stored at ``station_id`` (empty if the station saw no traffic)."""
        if station_id not in self._station_ids:
            raise KeyError(f"unknown station {station_id!r}")
        return PatternSet(self._local.get(station_id, {}).values())

    def local_patterns_for(self, user_id: str) -> list[LocalPattern]:
        """All local fragments recorded for ``user_id`` across stations."""
        if user_id not in self._users:
            raise KeyError(f"unknown user {user_id!r}")
        fragments = [
            per_station[user_id]
            for per_station in self._local.values()
            if user_id in per_station
        ]
        if not fragments:
            raise KeyError(f"user {user_id!r} has no recorded local patterns")
        return fragments

    def global_pattern(self, user_id: str) -> GlobalPattern:
        """The (never materialised at stations) global pattern of ``user_id``."""
        if user_id not in self._global_cache:
            self._global_cache[user_id] = GlobalPattern.from_locals(
                self.local_patterns_for(user_id)
            )
        return self._global_cache[user_id]

    # -- ground truth and cost helpers ------------------------------------------

    def similar_users(self, pattern: Pattern, epsilon: float) -> set[str]:
        """Users whose *global* pattern is ε-similar (Eq. 2) to ``pattern``."""
        return {
            user_id
            for user_id in self._users
            if pattern_epsilon_similar(self.global_pattern(user_id), pattern, epsilon)
        }

    def total_raw_size_bytes(self) -> int:
        """Total serialized size of all locally stored raw patterns (naive upload cost)."""
        return sum(
            pattern.size_bytes()
            for per_station in self._local.values()
            for pattern in per_station.values()
        )

    def __repr__(self) -> str:
        return (
            f"DistributedDataset(users={self.user_count}, stations={self.station_count}, "
            f"length={self._pattern_length})"
        )


def _clique_offsets(
    clique_assignment: tuple[int, int, int], clique_value_gap: int
) -> dict[PlaceSlot, int]:
    """Per-place value offsets implied by a clique assignment."""
    home, work, other = clique_assignment
    return {
        PlaceSlot.HOME: home * clique_value_gap,
        PlaceSlot.WORK: work * clique_value_gap,
        PlaceSlot.OTHER: other * clique_value_gap,
    }


def _split_values_by_station(
    values: list[int],
    category: CategoryProfile,
    mobility: UserMobility,
    intervals_per_day: int,
) -> dict[str, list[int]]:
    """Assign each interval's value to the station serving the user during it.

    Stations where the user recorded no activity at all are omitted (a base station
    has no record of a user who made no calls in its cell); the home station is kept
    even when empty so that every user has at least one fragment.
    """
    interval_count = len(values)
    per_station: dict[str, list[int]] = {}
    for interval_index, value in enumerate(values):
        hour = hour_of_day_for_interval(interval_index, intervals_per_day)
        place = category.place_at(hour)
        station = mobility.station_for(place)
        per_station.setdefault(station, [0] * interval_count)
        per_station[station][interval_index] = value
    non_empty = {
        station: station_values
        for station, station_values in per_station.items()
        if any(station_values)
    }
    if not non_empty:
        non_empty = {mobility.home_station: [0] * interval_count}
    return non_empty


def build_dataset(spec: DatasetSpec) -> DistributedDataset:
    """Construct a synthetic distributed dataset according to ``spec``.

    For every user the generator draws a category- and clique-shaped global series,
    then splits each interval's value to the station the user is attached to during
    that interval (home/work/other per the category schedule and the user's mobility
    assignment).  In addition to regular users, each category receives a few
    "over-splitting" decoys whose pattern is replicated in full at two different
    stations — the paper's canonical plain-Bloom-filter false positive.
    """
    grid = CityGrid(
        width_km=10.0 * spec.station_count,
        height_km=10.0,
        station_spacing_km=10.0,
    )
    station_ids = grid.station_ids[: spec.station_count]
    if len(station_ids) < spec.station_count:
        station_ids = [f"bs-extra-{i:03d}" for i in range(spec.station_count)]

    users: dict[str, UserProfile] = {}
    local: dict[str, dict[str, LocalPattern]] = {station: {} for station in station_ids}
    interval_count = spec.interval_count

    for category_index, category in enumerate(spec.categories):
        for user_index in range(spec.regular_users_in(category_index)):
            user_id = f"{category.name}-{user_index:04d}"
            user_rng = make_rng(spec.seed, "user", user_id)
            mobility = assign_mobility(
                user_id,
                category,
                station_ids,
                user_rng,
                colocation_probability=spec.colocation_probability,
            )
            clique_assignment = tuple(
                int(user_rng.integers(0, spec.cliques_per_place)) for _ in range(3)
            )
            values = generate_user_interval_values(
                category,
                interval_count,
                spec.intervals_per_day,
                user_rng,
                noise_level=spec.noise_level,
                place_offsets=_clique_offsets(clique_assignment, spec.clique_value_gap),
            )
            per_station_values = _split_values_by_station(
                values, category, mobility, spec.intervals_per_day
            )
            users[user_id] = UserProfile(
                user_id=user_id,
                category_name=category.name,
                mobility=mobility,
                clique_assignment=clique_assignment,
            )
            for station, station_values in per_station_values.items():
                local[station][user_id] = LocalPattern(user_id, station_values, station)

        for decoy_index in range(spec.replicated_decoys_per_category):
            user_id = f"decoy-replicated-{category.name}-{decoy_index:03d}"
            decoy_rng = make_rng(spec.seed, "decoy", user_id)
            clique_assignment = tuple(
                int(decoy_rng.integers(0, spec.cliques_per_place)) for _ in range(3)
            )
            values = generate_user_interval_values(
                category,
                interval_count,
                spec.intervals_per_day,
                decoy_rng,
                noise_level=spec.noise_level,
                place_offsets=_clique_offsets(clique_assignment, spec.clique_value_gap),
            )
            first = station_ids[int(decoy_rng.integers(0, len(station_ids)))]
            second = first
            if len(station_ids) > 1:
                while second == first:
                    second = station_ids[int(decoy_rng.integers(0, len(station_ids)))]
            mobility = UserMobility(
                user_id=user_id,
                home_station=first,
                work_station=second,
                other_station=first,
            )
            users[user_id] = UserProfile(
                user_id=user_id,
                category_name=category.name,
                mobility=mobility,
                clique_assignment=clique_assignment,
                is_decoy=True,
            )
            # The full category-shaped series is stored at *both* stations, so each
            # fragment looks exactly like a complete matching pattern even though the
            # aggregated global pattern is twice the query's.
            local[first][user_id] = LocalPattern(user_id, values, first)
            if second != first:
                local[second][user_id] = LocalPattern(user_id, values, second)

    return DistributedDataset(
        station_ids=station_ids,
        users=users,
        local_patterns=local,
        pattern_length=interval_count,
        intervals_per_day=spec.intervals_per_day,
    )


@dataclass(frozen=True)
class QueryWorkload:
    """A batch of query patterns with the ε they should be answered under."""

    queries: tuple[QueryPattern, ...]
    epsilon: float

    def __post_init__(self) -> None:
        require_non_empty(self.queries, "queries")
        require_non_negative(self.epsilon, "epsilon")

    def __len__(self) -> int:
        return len(self.queries)

    def __iter__(self):
        return iter(self.queries)


def build_query_workload(
    dataset: DistributedDataset,
    query_count: int,
    epsilon: float,
    seed: int = 11,
    categories: Iterable[str] | None = None,
) -> QueryWorkload:
    """Build a query workload by sampling existing users as "preferred customers".

    Queries are drawn round-robin across categories so that every category is
    represented, matching the paper's service-provider scenario where each campaign
    targets one communication profile.  Within a category, users whose pattern is
    split across the most base stations are preferred as exemplars: the service
    provider supplies the query's local patterns, and the finer the supplied
    breakdown the more candidate partitions the combination step (Eq. 4) can cover.
    """
    require_positive(query_count, "query_count")
    require_non_negative(epsilon, "epsilon")
    category_names = (
        list(categories)
        if categories is not None
        else sorted({profile.category_name for profile in (dataset.profile(u) for u in dataset.user_ids)})
    )
    require_non_empty(category_names, "categories")
    rng = make_rng(seed, "query-workload")

    def exemplar_pool(category_name: str) -> list[str]:
        members = [
            user_id
            for user_id in sorted(dataset.users_in_category(category_name))
            if not dataset.profile(user_id).is_decoy
        ]
        if not members:
            raise ValueError(f"category {category_name!r} has no users in the dataset")
        best_split = max(len(dataset.local_patterns_for(user_id)) for user_id in members)
        return [
            user_id
            for user_id in members
            if len(dataset.local_patterns_for(user_id)) == best_split
        ]

    per_category_users = {name: exemplar_pool(name) for name in category_names}
    queries: list[QueryPattern] = []
    for query_index in range(query_count):
        category_name = category_names[query_index % len(category_names)]
        members = per_category_users[category_name]
        user_id = members[int(rng.integers(0, len(members)))]
        locals_ = dataset.local_patterns_for(user_id)
        queries.append(QueryPattern(f"query-{query_index:04d}-{user_id}", locals_))
    return QueryWorkload(queries=tuple(queries), epsilon=epsilon)
