"""Direct construction of very large distributed datasets.

The full synthetic-city generator (:func:`repro.datagen.workload.build_dataset`)
models mobility, cliques and decoys faithfully but pays per-interval generator
costs that make a 10k-station build take minutes — far too slow for the
100x-scale benchmark tier and the large parity suites.  This module builds a
:class:`~repro.datagen.workload.DistributedDataset` *directly*: deterministic
station/user layout, a handful of fragments per user, small integer activity
values.  It trades ground-truth realism (no categories, cliques or decoys)
for construction speed; use it only where the quantity under test is matching
*mechanics* at scale, not retrieval quality.

Everything is seeded through :func:`repro.utils.rng.derive_seed` and uses the
standard-library :mod:`random` module, so the layout is identical across
processes, platforms and NumPy availability.
"""

from __future__ import annotations

import random

from repro.datagen.mobility import UserMobility
from repro.datagen.workload import DistributedDataset, UserProfile
from repro.timeseries.pattern import LocalPattern
from repro.timeseries.query import QueryPattern
from repro.utils.rng import derive_seed
from repro.utils.validation import require_positive

#: Category label carried by every synthetic user of a scale dataset.
SCALE_CATEGORY = "scale"


def build_scale_dataset(
    station_count: int,
    users_per_station: int = 1,
    pattern_length: int = 24,
    intervals_per_day: int = 24,
    fragments_per_user: int = 2,
    active_intervals: int = 6,
    seed: int = 7,
) -> DistributedDataset:
    """Build a large dataset directly, in O(stations · users_per_station).

    ``users_per_station`` controls density: the dataset holds
    ``station_count * users_per_station`` users, each splitting their pattern
    over ``fragments_per_user`` distinct stations (their "home" station plus
    deterministic-random others), so every station stores roughly
    ``users_per_station * fragments_per_user`` local patterns.  Each user is
    active in ``active_intervals`` intervals with small values; fragments are
    complementary, so the user's global pattern is their per-interval sum —
    exactly the structure DI-matching exploits.
    """
    require_positive(station_count, "station_count")
    require_positive(users_per_station, "users_per_station")
    require_positive(pattern_length, "pattern_length")
    require_positive(intervals_per_day, "intervals_per_day")
    require_positive(fragments_per_user, "fragments_per_user")
    require_positive(active_intervals, "active_intervals")
    if fragments_per_user > station_count:
        raise ValueError(
            f"fragments_per_user ({fragments_per_user}) cannot exceed "
            f"station_count ({station_count})"
        )
    if active_intervals > pattern_length:
        raise ValueError(
            f"active_intervals ({active_intervals}) cannot exceed "
            f"pattern_length ({pattern_length})"
        )
    rng = random.Random(derive_seed(seed, "scale-dataset", station_count))
    station_ids = [f"s{index:05d}" for index in range(station_count)]
    users: dict[str, UserProfile] = {}
    local: dict[str, dict[str, LocalPattern]] = {sid: {} for sid in station_ids}
    user_count = station_count * users_per_station
    for user_index in range(user_count):
        user_id = f"u{user_index:07d}"
        home = user_index % station_count
        # The remaining fragments land on distinct deterministic-random stations.
        stations = [home]
        while len(stations) < fragments_per_user:
            candidate = rng.randrange(station_count)
            if candidate not in stations:
                stations.append(candidate)
        # Activity: `active_intervals` slots starting at a user-specific phase,
        # each fragment owning a contiguous run of them.
        phase = rng.randrange(pattern_length)
        slots = [(phase + step) % pattern_length for step in range(active_intervals)]
        base_value = 1 + user_index % 7
        per_fragment = max(1, active_intervals // fragments_per_user)
        for fragment_index, station in enumerate(stations):
            begin = fragment_index * per_fragment
            end = (
                active_intervals
                if fragment_index == len(stations) - 1
                else min(active_intervals, begin + per_fragment)
            )
            values = [0] * pattern_length
            for slot in slots[begin:end]:
                values[slot] = base_value
            if not any(values):
                continue
            station_id = station_ids[station]
            local[station_id][user_id] = LocalPattern(
                user_id=user_id, values=values, station_id=station_id
            )
        mobility = UserMobility(
            user_id=user_id,
            home_station=station_ids[stations[0]],
            work_station=station_ids[stations[min(1, len(stations) - 1)]],
            other_station=station_ids[stations[-1]],
        )
        users[user_id] = UserProfile(
            user_id=user_id,
            category_name=SCALE_CATEGORY,
            mobility=mobility,
        )
    return DistributedDataset(
        station_ids=station_ids,
        users=users,
        local_patterns=local,
        pattern_length=pattern_length,
        intervals_per_day=intervals_per_day,
    )


def build_scale_queries(
    dataset: DistributedDataset, query_count: int, seed: int = 7
) -> list[QueryPattern]:
    """Sample ``query_count`` users and turn their fragments into queries.

    Each query's local fragments are an existing user's fragments, so the
    query has at least one exact match (that user, weight sum 1) and DI
    matching exercises its full report/aggregate path.  Sampling is
    deterministic under ``seed``.
    """
    require_positive(query_count, "query_count")
    user_ids = dataset.user_ids
    if query_count > len(user_ids):
        raise ValueError(
            f"query_count ({query_count}) exceeds the dataset's "
            f"{len(user_ids)} users"
        )
    rng = random.Random(derive_seed(seed, "scale-queries", query_count))
    chosen = rng.sample(user_ids, query_count)
    return [
        QueryPattern(
            query_id=f"q-{user_id}",
            local_patterns=tuple(dataset.local_patterns_for(user_id)),
        )
        for user_id in chosen
    ]
