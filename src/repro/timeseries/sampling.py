"""Uniform sampling of pattern values (the paper's parameter ``b``).

To bound communication and hashing cost, Algorithm 1 samples ``b`` points from each
(accumulated) pattern instead of hashing every interval.  The base stations must
sample the *same* positions, so sampling is deterministic: evenly spaced indices over
the pattern length, always including the final (maximum) point, which carries the
pattern's weight.
"""

from __future__ import annotations

from typing import Sequence, TypeVar

from repro.utils.validation import require_non_empty, require_positive

T = TypeVar("T")


def uniform_sample_indices(length: int, sample_count: int) -> list[int]:
    """Evenly spaced indices into a sequence of ``length`` items.

    Always includes the last index (the accumulated maximum).  If ``sample_count``
    is greater than or equal to ``length``, every index is returned.
    """
    require_positive(length, "length")
    require_positive(sample_count, "sample_count")
    if sample_count >= length:
        return list(range(length))
    if sample_count == 1:
        return [length - 1]
    step = (length - 1) / (sample_count - 1)
    indices = [round(i * step) for i in range(sample_count)]
    # Rounding can produce duplicates for small lengths; deduplicate preserving order.
    seen: dict[int, None] = {}
    for index in indices:
        seen.setdefault(min(index, length - 1), None)
    result = list(seen.keys())
    if result[-1] != length - 1:
        result.append(length - 1)
    return result


def uniform_sample(values: Sequence[T], sample_count: int) -> list[T]:
    """Return ``sample_count`` evenly spaced values from ``values`` (last included)."""
    require_non_empty(values, "values")
    return [values[i] for i in uniform_sample_indices(len(values), sample_count)]
