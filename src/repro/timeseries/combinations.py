"""Combinations of query local patterns (Eq. 4 of the paper).

A target user's data may be split across any subset of the base stations the query
user visited (e.g. the query user's home and office are different stations but a
target user's home and office fall in the same cell).  The data center therefore
enumerates every non-empty subset of the query's local patterns, sums each subset
into a combined pattern, and hashes all of them into the WBF.  The number of
combinations is ``Ψ = Σ_{j=1..l} C(l, j) = 2^l − 1``.
"""

from __future__ import annotations

from itertools import combinations
from math import comb
from typing import Iterator, Sequence

from repro.timeseries.pattern import LocalPattern, Pattern
from repro.utils.validation import require_non_empty, require_positive


def combination_count(local_pattern_count: int) -> int:
    """Eq. (4): the number of non-empty subsets of ``local_pattern_count`` patterns."""
    require_positive(local_pattern_count, "local_pattern_count")
    return sum(comb(local_pattern_count, j) for j in range(1, local_pattern_count + 1))


def enumerate_combinations(items: Sequence[object]) -> Iterator[tuple[object, ...]]:
    """Yield every non-empty subset of ``items`` in size order, then lexicographic."""
    require_non_empty(items, "items")
    for size in range(1, len(items) + 1):
        yield from combinations(items, size)


def enumerate_pattern_combinations(locals_: Sequence[LocalPattern]) -> list[Pattern]:
    """Sum every non-empty subset of ``locals_`` into a combined pattern.

    The full subset (all local patterns) equals the query's global pattern.  The
    returned list therefore always contains the global pattern as its last element
    and has :func:`combination_count` entries.
    """
    require_non_empty(locals_, "locals_")
    combined: list[Pattern] = []
    for subset in enumerate_combinations(locals_):
        total: Pattern = subset[0]
        for pattern in subset[1:]:
            total = total + pattern
        # Combined query fragments lose the single-station identity; represent them
        # as plain Patterns owned by the query user.
        combined.append(Pattern(total.user_id, total.values))
    return combined
