"""Communication-pattern attribute fusion (Definition 1 of the paper).

A user's raw data per time interval consists of several attributes — the paper uses
the number of calls, the total call duration and the number of distinct partners —
and the *communication pattern value* for that interval is their weighted mean
``π_i^g = (1/m) Σ_f w_f · s_i^{g,f}``.  The default configuration matches the paper:
three attributes, equal weights (the plain mean).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import require_non_negative


@dataclass(frozen=True)
class CommunicationAttributes:
    """Raw per-interval attributes of one user's communication activity."""

    call_count: int
    call_duration: int
    partner_count: int

    def __post_init__(self) -> None:
        require_non_negative(self.call_count, "call_count")
        require_non_negative(self.call_duration, "call_duration")
        require_non_negative(self.partner_count, "partner_count")

    def as_tuple(self) -> tuple[int, int, int]:
        """Return ``(call_count, call_duration, partner_count)``."""
        return (self.call_count, self.call_duration, self.partner_count)


@dataclass(frozen=True)
class AttributeWeights:
    """Weights ``w_f`` applied to the three attributes in Definition 1."""

    call_count: float = 1.0
    call_duration: float = 1.0
    partner_count: float = 1.0

    def __post_init__(self) -> None:
        require_non_negative(self.call_count, "call_count")
        require_non_negative(self.call_duration, "call_duration")
        require_non_negative(self.partner_count, "partner_count")
        if self.call_count == self.call_duration == self.partner_count == 0:
            raise ValueError("at least one attribute weight must be positive")

    def as_tuple(self) -> tuple[float, float, float]:
        """Return ``(w_calls, w_duration, w_partners)``."""
        return (self.call_count, self.call_duration, self.partner_count)


def communication_pattern_value(
    attributes: CommunicationAttributes,
    weights: AttributeWeights | None = None,
) -> int:
    """Definition 1: the weighted mean of the interval's attributes, rounded to an int.

    The result is rounded because the matching layer (Bloom-filter hashing of integer
    accumulated values, Eq. 2 with integer ε) operates on natural numbers, as the
    paper assumes.
    """
    weights = weights or AttributeWeights()
    attribute_values = attributes.as_tuple()
    weight_values = weights.as_tuple()
    weighted_sum = sum(w * s for w, s in zip(weight_values, attribute_values))
    return int(round(weighted_sum / len(attribute_values)))
