"""Query pattern: the pattern set a service provider submits to the data center.

A query consists of the local patterns of one "preferred customer" (one fragment per
base station the customer visited); their per-interval sum is the query's global
pattern.  Matching is defined against the global pattern (Problem Statement,
Section III-B), but the local fragments are needed by the encoder to enumerate
combinations (Eq. 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.timeseries.pattern import GlobalPattern, LocalPattern
from repro.utils.validation import require_non_empty


@dataclass(frozen=True)
class QueryPattern:
    """A query: an id plus the local fragments whose sum is the target global pattern."""

    query_id: str
    local_patterns: tuple[LocalPattern, ...]
    _global: GlobalPattern = field(init=False, repr=False, compare=False)

    def __init__(self, query_id: str, local_patterns: list[LocalPattern] | tuple[LocalPattern, ...]) -> None:
        require_non_empty(local_patterns, "local_patterns")
        object.__setattr__(self, "query_id", str(query_id))
        object.__setattr__(self, "local_patterns", tuple(local_patterns))
        object.__setattr__(self, "_global", GlobalPattern.from_locals(list(local_patterns)))

    @property
    def global_pattern(self) -> GlobalPattern:
        """The per-interval sum of the query's local fragments."""
        return self._global

    @property
    def length(self) -> int:
        """Number of time intervals covered."""
        return len(self._global)

    @property
    def station_count(self) -> int:
        """Number of local fragments (the paper's ``l`` / ``e``)."""
        return len(self.local_patterns)

    def size_bytes(self) -> int:
        """Serialized size of the raw query (id plus all local fragments)."""
        from repro.utils.serialization import sizeof_id

        return sizeof_id() + sum(p.size_bytes() for p in self.local_patterns)

    def __repr__(self) -> str:
        return (
            f"QueryPattern(query_id={self.query_id!r}, stations={self.station_count}, "
            f"length={self.length})"
        )
