"""Accumulation transform (Eq. 3 of the paper).

The transform maps a pattern ``V^1, V^2, ..., V^t`` to its running sum
``f(g) = f(g-1) + V^g`` with ``f(0) = V^0``.  It makes the series monotonically
non-decreasing, folds the time order into the values (so ``{1,2,3}`` and ``{3,2,1}``
become distinguishable: ``{1,3,6}`` vs ``{3,5,6}``) and amplifies differences between
patterns, which is why the encoder hashes accumulated values rather than raw ones.
"""

from __future__ import annotations

from typing import Sequence

from repro.timeseries.pattern import GlobalPattern, LocalPattern, Pattern
from repro.utils.validation import require_all_integers, require_non_empty


def accumulate(values: Sequence[int]) -> list[int]:
    """Return the running-sum (accumulated) form of ``values``."""
    items = require_all_integers(values, "values")
    require_non_empty(items, "values")
    out: list[int] = []
    running = 0
    for value in items:
        running += value
        out.append(running)
    return out


def deaccumulate(accumulated: Sequence[int]) -> list[int]:
    """Invert :func:`accumulate`: recover the original values from the running sums."""
    items = require_all_integers(accumulated, "accumulated")
    require_non_empty(items, "accumulated")
    out: list[int] = []
    previous = 0
    for value in items:
        out.append(value - previous)
        previous = value
    return out


def is_non_decreasing(values: Sequence[int]) -> bool:
    """Return True if ``values`` is monotonically non-decreasing."""
    return all(b >= a for a, b in zip(values, values[1:]))


def accumulate_pattern(pattern: Pattern) -> Pattern:
    """Return a new pattern of the same concrete type with accumulated values."""
    accumulated = accumulate(pattern.values)
    if isinstance(pattern, LocalPattern):
        return LocalPattern(pattern.user_id, accumulated, pattern.station_id)
    if isinstance(pattern, GlobalPattern):
        return GlobalPattern(pattern.user_id, accumulated)
    return Pattern(pattern.user_id, accumulated)
