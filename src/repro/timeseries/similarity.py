"""Similarity measures between patterns.

The paper's matching predicate (Eq. 2) requires every interval of the candidate to be
within ``ε`` of the query: ``|ν_u^t − ν_i^t| ≤ ε`` for all ``t`` — i.e. the Chebyshev
(L∞) distance is at most ε.  The paper phrases this as an "L1-norm similarity"
because the per-interval comparison uses absolute differences; we expose both the
per-interval predicate and conventional L1/L2/Chebyshev distances so downstream users
can plug in other distance functions (listed as future work in the paper).
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.timeseries.pattern import Pattern
from repro.utils.validation import require_non_negative


def _check_same_length(a: Sequence[float], b: Sequence[float]) -> None:
    if len(a) != len(b):
        raise ValueError(f"sequences have different lengths: {len(a)} vs {len(b)}")
    if len(a) == 0:
        raise ValueError("sequences must not be empty")


def l1_distance(a: Sequence[float], b: Sequence[float]) -> float:
    """Sum of absolute per-interval differences."""
    _check_same_length(a, b)
    return float(sum(abs(x - y) for x, y in zip(a, b)))


def l2_distance(a: Sequence[float], b: Sequence[float]) -> float:
    """Euclidean distance."""
    _check_same_length(a, b)
    return math.sqrt(sum((x - y) ** 2 for x, y in zip(a, b)))


def chebyshev_distance(a: Sequence[float], b: Sequence[float]) -> float:
    """Maximum absolute per-interval difference."""
    _check_same_length(a, b)
    return float(max(abs(x - y) for x, y in zip(a, b)))


def epsilon_similar(a: Sequence[float], b: Sequence[float], epsilon: float) -> bool:
    """Eq. (2): True if every interval of ``a`` is within ``epsilon`` of ``b``."""
    require_non_negative(epsilon, "epsilon")
    _check_same_length(a, b)
    return all(abs(x - y) <= epsilon for x, y in zip(a, b))


def pattern_epsilon_similar(a: Pattern, b: Pattern, epsilon: float) -> bool:
    """Eq. (2) applied to two :class:`~repro.timeseries.pattern.Pattern` objects."""
    return epsilon_similar(a.values, b.values, epsilon)
