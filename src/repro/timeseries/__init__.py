"""Time-series substrate: patterns, transforms, sampling, similarity and combinations.

Implements the paper's Definition 1 (communication pattern), Eq. (2) (ε-similarity),
Eq. (3) (accumulation transform) and Eq. (4) (local-pattern combinations).
"""

from repro.timeseries.attributes import AttributeWeights, CommunicationAttributes, communication_pattern_value
from repro.timeseries.combinations import (
    combination_count,
    enumerate_combinations,
    enumerate_pattern_combinations,
)
from repro.timeseries.pattern import GlobalPattern, LocalPattern, Pattern, PatternSet
from repro.timeseries.sampling import uniform_sample, uniform_sample_indices
from repro.timeseries.similarity import (
    chebyshev_distance,
    epsilon_similar,
    l1_distance,
    l2_distance,
    pattern_epsilon_similar,
)
from repro.timeseries.transform import accumulate, deaccumulate, is_non_decreasing

__all__ = [
    "AttributeWeights",
    "CommunicationAttributes",
    "communication_pattern_value",
    "combination_count",
    "enumerate_combinations",
    "enumerate_pattern_combinations",
    "GlobalPattern",
    "LocalPattern",
    "Pattern",
    "PatternSet",
    "uniform_sample",
    "uniform_sample_indices",
    "chebyshev_distance",
    "epsilon_similar",
    "l1_distance",
    "l2_distance",
    "pattern_epsilon_similar",
    "accumulate",
    "deaccumulate",
    "is_non_decreasing",
]
