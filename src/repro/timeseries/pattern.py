"""Pattern data model.

The paper distinguishes three pattern notions:

* a **pattern** — a fixed-length integer time series describing a user's
  communication intensity per time interval (Definition 1);
* a **local pattern** — the fragment of a user's pattern observed by one base
  station (the values recorded while the user was attached to that station);
* a **global pattern** — the per-interval sum of a user's local patterns across all
  base stations (``V_i = Σ_j V_{i,j}``), which is never materialised at any single
  station.

Patterns are immutable value objects; arithmetic (summing local fragments) returns
new objects.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

from repro.utils.validation import require_all_integers, require_non_empty


@dataclass(frozen=True)
class Pattern:
    """A fixed-length integer time series identified by the owning user."""

    user_id: str
    values: tuple[int, ...]

    def __init__(self, user_id: str, values: Sequence[int]) -> None:
        object.__setattr__(self, "user_id", str(user_id))
        object.__setattr__(self, "values", tuple(require_all_integers(values, "values")))
        require_non_empty(self.values, "values")

    def __len__(self) -> int:
        return len(self.values)

    def __iter__(self) -> Iterator[int]:
        return iter(self.values)

    def __getitem__(self, index: int) -> int:
        return self.values[index]

    @property
    def length(self) -> int:
        """Number of time intervals covered by the pattern."""
        return len(self.values)

    @property
    def total(self) -> int:
        """Sum of all interval values."""
        return sum(self.values)

    @property
    def maximum(self) -> int:
        """Largest interval value."""
        return max(self.values)

    def add(self, other: "Pattern") -> "Pattern":
        """Per-interval sum of two equally long patterns for the same user."""
        self._check_addable(other)
        summed = tuple(a + b for a, b in zip(self.values, other.values))
        return Pattern(self.user_id, summed)

    def _check_addable(self, other: "Pattern") -> None:
        if not isinstance(other, Pattern):
            raise TypeError(f"expected Pattern, got {type(other).__name__}")
        if len(other) != len(self):
            raise ValueError(
                f"patterns have different lengths: {len(self)} vs {len(other)}"
            )
        if other.user_id != self.user_id:
            raise ValueError(
                f"patterns belong to different users: {self.user_id!r} vs {other.user_id!r}"
            )

    def __add__(self, other: "Pattern") -> "Pattern":
        return self.add(other)

    def size_bytes(self) -> int:
        """Serialized size: the user id plus one integer per interval."""
        from repro.utils.serialization import sizeof_id, sizeof_int

        return sizeof_id() + sizeof_int(len(self.values))

    def __repr__(self) -> str:
        preview = ", ".join(str(v) for v in self.values[:6])
        suffix = ", ..." if len(self.values) > 6 else ""
        return f"Pattern(user_id={self.user_id!r}, values=[{preview}{suffix}])"


@dataclass(frozen=True, repr=False)
class LocalPattern(Pattern):
    """The fragment of a user's pattern observed at one base station."""

    station_id: str = field(default="")

    def __init__(self, user_id: str, values: Sequence[int], station_id: str) -> None:
        super().__init__(user_id, values)
        object.__setattr__(self, "station_id", str(station_id))

    def size_bytes(self) -> int:
        """Serialized size: base pattern plus the station identifier."""
        from repro.utils.serialization import sizeof_id

        return super().size_bytes() + sizeof_id()

    def __repr__(self) -> str:
        return (
            f"LocalPattern(user_id={self.user_id!r}, station_id={self.station_id!r}, "
            f"length={len(self)})"
        )


class GlobalPattern(Pattern):
    """A user's global pattern: the per-interval sum of local fragments."""

    @classmethod
    def from_locals(cls, locals_: Sequence[LocalPattern]) -> "GlobalPattern":
        """Aggregate local fragments (all for one user, equal length) into the global pattern."""
        require_non_empty(locals_, "locals_")
        user_ids = {p.user_id for p in locals_}
        if len(user_ids) != 1:
            raise ValueError(f"local patterns belong to multiple users: {sorted(user_ids)}")
        lengths = {len(p) for p in locals_}
        if len(lengths) != 1:
            raise ValueError(f"local patterns have different lengths: {sorted(lengths)}")
        (length,) = lengths
        summed = [0] * length
        for local in locals_:
            for index, value in enumerate(local.values):
                summed[index] += value
        return cls(locals_[0].user_id, summed)


class PatternSet:
    """An ordered collection of patterns (the paper's Ψ^g), indexable by user id."""

    def __init__(self, patterns: Iterable[Pattern] = ()) -> None:
        self._patterns: list[Pattern] = []
        self._by_user: dict[str, list[Pattern]] = {}
        for pattern in patterns:
            self.add(pattern)

    def add(self, pattern: Pattern) -> None:
        """Append ``pattern`` to the set."""
        if not isinstance(pattern, Pattern):
            raise TypeError(f"expected Pattern, got {type(pattern).__name__}")
        self._patterns.append(pattern)
        self._by_user.setdefault(pattern.user_id, []).append(pattern)

    def patterns_for(self, user_id: str) -> list[Pattern]:
        """All patterns stored for ``user_id`` (empty list if none)."""
        return list(self._by_user.get(user_id, []))

    def user_ids(self) -> list[str]:
        """Distinct user ids in insertion order of first appearance."""
        seen: dict[str, None] = {}
        for pattern in self._patterns:
            seen.setdefault(pattern.user_id, None)
        return list(seen.keys())

    def __iter__(self) -> Iterator[Pattern]:
        return iter(self._patterns)

    def __len__(self) -> int:
        return len(self._patterns)

    def __contains__(self, user_id: str) -> bool:
        return user_id in self._by_user

    def size_bytes(self) -> int:
        """Total serialized size of all contained patterns."""
        return sum(p.size_bytes() for p in self._patterns)

    def __repr__(self) -> str:
        return f"PatternSet(patterns={len(self._patterns)}, users={len(self._by_user)})"
