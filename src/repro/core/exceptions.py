"""Exception hierarchy for the DI-matching library."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library-specific errors."""


class ConfigurationError(ReproError):
    """Raised when a configuration object is internally inconsistent."""


class EncodingError(ReproError):
    """Raised when a query pattern set cannot be encoded into a filter."""


class MatchingError(ReproError):
    """Raised when base-station matching or aggregation receives invalid inputs."""
