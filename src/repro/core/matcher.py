"""Base-station side pattern matching (Algorithm 2).

Each base station transforms every locally stored pattern into accumulated form,
samples the same ``b`` time indices the encoder used, probes the received filter with
each sampled value and reports a user only if

* every sampled value hits all-1 bits, **and**
* all sampled values agree on (at least) one common weight.

The reported weight is that common weight — the fraction of the query's global
pattern the matched fragment accounts for.  The per-pattern cost is ``O(b·k)`` bit
probes, matching the paper's complexity analysis.
"""

from __future__ import annotations

from fractions import Fraction

from repro.bloom.standard import BloomFilter
from repro.core.config import DIMatchingConfig
from repro.core.encoder import EncodedQueryBatch, PatternEncoder
from repro.core.exceptions import MatchingError
from repro.core.protocol import MatchReport
from repro.core.wbf import WeightedBloomFilter
from repro.timeseries.pattern import Pattern, PatternSet
from repro.timeseries.transform import accumulate


class StationMatcherCache:
    """Per-station :class:`BaseStationMatcher` reuse across protocol rounds.

    Matcher construction accumulates and samples every local candidate, so
    protocols keep one matcher per station alive between rounds (streaming,
    query sweeps).  A cached matcher is reused only while the station passes
    the *same* :class:`PatternSet` object with an unchanged length —
    ``PatternSet``'s only mutator is ``add`` and patterns themselves are
    immutable, so the length check catches in-place growth.
    """

    def __init__(self, config: DIMatchingConfig) -> None:
        self._config = config
        self._matchers: dict[str, tuple[PatternSet, int, "BaseStationMatcher"]] = {}

    def __getstate__(self) -> dict:
        # Cached matchers are keyed by PatternSet identity, which does not
        # survive pickling (process-executor workers receive copies), so only
        # the configuration travels; workers rebuild matchers on demand.
        return {"_config": self._config}

    def __setstate__(self, state: dict) -> None:
        self._config = state["_config"]
        self._matchers = {}

    def matcher_for(self, station_id: str, patterns: PatternSet) -> "BaseStationMatcher":
        cached = self._matchers.get(station_id)
        if cached is not None:
            cached_patterns, cached_length, matcher = cached
            if cached_patterns is patterns and cached_length == len(patterns):
                return matcher
        matcher = BaseStationMatcher(self._config, station_id, patterns)
        self._matchers[station_id] = (patterns, len(patterns), matcher)
        return matcher


class BaseStationMatcher:
    """Implements the base-station side of DI-matching for one station."""

    def __init__(
        self,
        config: DIMatchingConfig,
        station_id: str,
        patterns: PatternSet,
    ) -> None:
        self._config = config
        self._station_id = str(station_id)
        self._patterns = patterns
        self._encoder = PatternEncoder(config)
        # Candidate probe items are query-independent: accumulated + sampled once.
        self._candidate_items: list[tuple[str, list[object]]] = []
        for pattern in patterns:
            encoded_values = (
                accumulate(pattern.values) if config.use_accumulation else list(pattern.values)
            )
            items = self._encoder.items_for_accumulated(encoded_values)
            self._candidate_items.append((pattern.user_id, items))
        # Bit positions depend only on (m, k, seed); cache them per item for reuse
        # across all candidates sharing a value (e.g. zero-activity intervals).
        self._position_cache: dict[object, list[int]] = {}
        self._cached_for: tuple[int, int, int] | None = None

    @property
    def station_id(self) -> str:
        """Identifier of the station this matcher runs at."""
        return self._station_id

    @property
    def candidate_count(self) -> int:
        """Number of locally stored patterns."""
        return len(self._candidate_items)

    # -- position caching ---------------------------------------------------------

    def _cache_for(self, filter_: WeightedBloomFilter | BloomFilter) -> dict[object, list[int]]:
        family = filter_.hash_family
        signature = (family.value_range, family.hash_count, family.seed)
        if self._cached_for != signature:
            self._position_cache = {}
            self._cached_for = signature
        return self._position_cache

    def _positions_for(self, item: object, filter_: WeightedBloomFilter | BloomFilter) -> list[int]:
        cache = self._cache_for(filter_)
        positions = cache.get(item)
        if positions is None:
            positions = filter_.hash_family.positions(item)
            cache[item] = positions
        return positions

    def _rows_for_items(
        self, items: list[object], filter_: WeightedBloomFilter | BloomFilter
    ) -> list[list[int]]:
        """Positions for every item, computing cache misses in one batched call."""
        cache = self._cache_for(filter_)
        missing = [item for item in items if item not in cache]
        if missing:
            unique = list(dict.fromkeys(missing))
            for item, row in zip(unique, filter_.hash_family.indices_batch(unique)):
                cache[item] = row
        return [cache[item] for item in items]

    # -- weighted matching (Algorithm 2) --------------------------------------------

    def match_pattern(
        self, pattern: Pattern, wbf: WeightedBloomFilter
    ) -> dict[str, frozenset[Fraction]]:
        """Match a single pattern against a WBF.

        Returns a mapping ``query_id -> consistent weights``: one entry per query
        pattern the local pattern is consistent with (empty when nothing matches).
        A set usually holds a single weight; it holds several when combinations of
        the same query differ by less than ε at every sampled point and are therefore
        indistinguishable through the filter — the data center resolves that
        ambiguity during aggregation.
        """
        encoded_values = (
            accumulate(pattern.values)
            if self._config.use_accumulation
            else list(pattern.values)
        )
        items = self._encoder.items_for_accumulated(encoded_values)
        return self._match_items(items, wbf)

    def _match_items(
        self, items: list[object], wbf: WeightedBloomFilter
    ) -> dict[str, frozenset[Fraction]]:
        return self._match_rows(self._rows_for_items(items, wbf), wbf)

    def _match_rows(
        self,
        rows: list[list[int]],
        wbf: WeightedBloomFilter,
        *,
        bits_checked: bool = False,
    ) -> dict[str, frozenset[Fraction]]:
        """Algorithm 2's per-candidate test over precomputed position rows.

        The bit membership of every sampled value is tested in one vectorized
        backend call (unless the caller already did); the sparse weight
        intersection runs only when all bits pass, which on real workloads is
        the rare case.
        """
        if not bits_checked and not all(wbf.bits_all_set_rows(rows)):
            return {}
        if wbf.MASK_INDEX_ENABLED:
            # One integer-mask AND across all sampled positions: equivalent to
            # intersecting per-row weight sets (intersection is associative and
            # the result is empty iff any partial intersection is), but without
            # building a Python set per row.
            common: "frozenset | set | None" = wbf.consistent_weights_over(
                position for row in rows for position in row
            )
            if not common:
                return {}
        else:
            common = None
            for row in rows:
                weights = wbf.query_weights_at(row, bits_checked=True)
                if not weights:
                    return {}
                common = set(weights) if common is None else (common & weights)
                if not common:
                    return {}
            if not common:
                return {}
        grouped: dict[str, set[Fraction]] = {}
        for query_id, weight in common:
            grouped.setdefault(query_id, set()).add(weight)
        return {query_id: frozenset(weights) for query_id, weights in grouped.items()}

    def match_against(self, encoded: EncodedQueryBatch) -> list[MatchReport]:
        """Match every locally stored pattern against the received WBF.

        The bit pre-check of *all* candidates' sampled values runs as one
        vectorized row-test per station; only candidates whose every sampled
        value hits all-1 bits proceed to the weight-intersection stage.  One
        report is emitted per (user, query, consistent weight); the similarity
        ranker later selects one weight per reporting station when summing.
        """
        if encoded.config.sample_count != self._config.sample_count:
            raise MatchingError(
                "encoder and matcher sample counts differ "
                f"({encoded.config.sample_count} vs {self._config.sample_count}); "
                "center and stations must share the configuration"
            )
        wbf = encoded.wbf
        candidate_rows = [
            (user_id, self._rows_for_items(items, wbf))
            for user_id, items in self._candidate_items
        ]
        flat_rows = [row for _, rows in candidate_rows for row in rows]
        passed = wbf.bits_all_set_rows(flat_rows)
        reports: list[MatchReport] = []
        offset = 0
        for user_id, rows in candidate_rows:
            row_count = len(rows)
            bits_ok = all(passed[offset : offset + row_count])
            offset += row_count
            if not bits_ok:
                continue
            matched = self._match_rows(rows, wbf, bits_checked=True)
            for query_id, weights in matched.items():
                for weight in weights:
                    reports.append(
                        MatchReport(
                            user_id=user_id,
                            station_id=self._station_id,
                            weight=weight,
                            query_id=query_id,
                        )
                    )
        return reports

    # -- membership-only matching (plain BF baseline) ---------------------------------

    def match_against_plain(self, bloom: BloomFilter) -> list[MatchReport]:
        """Match every locally stored pattern against a plain Bloom filter.

        Used by the BF baseline: a pattern is reported when all its sampled values
        are (possibly falsely) present; no weight is available.  All candidates'
        probes run as a single vectorized row-test against the filter.
        """
        candidate_rows = [
            (user_id, self._rows_for_items(items, bloom))
            for user_id, items in self._candidate_items
        ]
        flat_rows = [row for _, rows in candidate_rows for row in rows]
        passed = bloom.bits.all_set_rows(flat_rows)
        reports: list[MatchReport] = []
        offset = 0
        for user_id, rows in candidate_rows:
            row_count = len(rows)
            if all(passed[offset : offset + row_count]):
                reports.append(
                    MatchReport(user_id=user_id, station_id=self._station_id, weight=None)
                )
            offset += row_count
        return reports
