"""Base-station side pattern matching (Algorithm 2).

Each base station transforms every locally stored pattern into accumulated form,
samples the same ``b`` time indices the encoder used, probes the received filter with
each sampled value and reports a user only if

* every sampled value hits all-1 bits, **and**
* all sampled values agree on (at least) one common weight.

The reported weight is that common weight — the fraction of the query's global
pattern the matched fragment accounts for.  The per-pattern cost is ``O(b·k)`` bit
probes, matching the paper's complexity analysis.
"""

from __future__ import annotations

from fractions import Fraction

from repro.bloom.standard import BloomFilter
from repro.core.config import DIMatchingConfig
from repro.core.encoder import EncodedQueryBatch, PatternEncoder
from repro.core.exceptions import MatchingError
from repro.core.protocol import MatchReport
from repro.core.wbf import WeightedBloomFilter
from repro.timeseries.pattern import Pattern, PatternSet
from repro.timeseries.transform import accumulate


class BaseStationMatcher:
    """Implements the base-station side of DI-matching for one station."""

    def __init__(
        self,
        config: DIMatchingConfig,
        station_id: str,
        patterns: PatternSet,
    ) -> None:
        self._config = config
        self._station_id = str(station_id)
        self._patterns = patterns
        self._encoder = PatternEncoder(config)
        # Candidate probe items are query-independent: accumulated + sampled once.
        self._candidate_items: list[tuple[str, list[object]]] = []
        for pattern in patterns:
            encoded_values = (
                accumulate(pattern.values) if config.use_accumulation else list(pattern.values)
            )
            items = self._encoder.items_for_accumulated(encoded_values)
            self._candidate_items.append((pattern.user_id, items))
        # Bit positions depend only on (m, k, seed); cache them per item for reuse
        # across all candidates sharing a value (e.g. zero-activity intervals).
        self._position_cache: dict[object, list[int]] = {}
        self._cached_for: tuple[int, int, int] | None = None

    @property
    def station_id(self) -> str:
        """Identifier of the station this matcher runs at."""
        return self._station_id

    @property
    def candidate_count(self) -> int:
        """Number of locally stored patterns."""
        return len(self._candidate_items)

    # -- position caching ---------------------------------------------------------

    def _positions_for(self, item: object, filter_: WeightedBloomFilter | BloomFilter) -> list[int]:
        family = filter_.hash_family
        signature = (family.value_range, family.hash_count, family.seed)
        if self._cached_for != signature:
            self._position_cache = {}
            self._cached_for = signature
        positions = self._position_cache.get(item)
        if positions is None:
            positions = family.positions(item)
            self._position_cache[item] = positions
        return positions

    # -- weighted matching (Algorithm 2) --------------------------------------------

    def match_pattern(
        self, pattern: Pattern, wbf: WeightedBloomFilter
    ) -> dict[str, frozenset[Fraction]]:
        """Match a single pattern against a WBF.

        Returns a mapping ``query_id -> consistent weights``: one entry per query
        pattern the local pattern is consistent with (empty when nothing matches).
        A set usually holds a single weight; it holds several when combinations of
        the same query differ by less than ε at every sampled point and are therefore
        indistinguishable through the filter — the data center resolves that
        ambiguity during aggregation.
        """
        encoded_values = (
            accumulate(pattern.values)
            if self._config.use_accumulation
            else list(pattern.values)
        )
        items = self._encoder.items_for_accumulated(encoded_values)
        return self._match_items(items, wbf)

    def _match_items(
        self, items: list[object], wbf: WeightedBloomFilter
    ) -> dict[str, frozenset[Fraction]]:
        common: set[tuple[str, Fraction]] | None = None
        for item in items:
            weights = wbf.query_weights_at(self._positions_for(item, wbf))
            if not weights:
                return {}
            common = set(weights) if common is None else (common & weights)
            if not common:
                return {}
        if not common:
            return {}
        grouped: dict[str, set[Fraction]] = {}
        for query_id, weight in common:
            grouped.setdefault(query_id, set()).add(weight)
        return {query_id: frozenset(weights) for query_id, weights in grouped.items()}

    def match_against(self, encoded: EncodedQueryBatch) -> list[MatchReport]:
        """Match every locally stored pattern against the received WBF.

        One report is emitted per (user, query, consistent weight); the similarity
        ranker later selects one weight per reporting station when summing.
        """
        if encoded.config.sample_count != self._config.sample_count:
            raise MatchingError(
                "encoder and matcher sample counts differ "
                f"({encoded.config.sample_count} vs {self._config.sample_count}); "
                "center and stations must share the configuration"
            )
        reports: list[MatchReport] = []
        for user_id, items in self._candidate_items:
            matched = self._match_items(items, encoded.wbf)
            for query_id, weights in matched.items():
                for weight in weights:
                    reports.append(
                        MatchReport(
                            user_id=user_id,
                            station_id=self._station_id,
                            weight=weight,
                            query_id=query_id,
                        )
                    )
        return reports

    # -- membership-only matching (plain BF baseline) ---------------------------------

    def match_against_plain(self, bloom: BloomFilter) -> list[MatchReport]:
        """Match every locally stored pattern against a plain Bloom filter.

        Used by the BF baseline: a pattern is reported when all its sampled values
        are (possibly falsely) present; no weight is available.
        """
        reports: list[MatchReport] = []
        for user_id, items in self._candidate_items:
            if all(
                all(bloom.bits.get(p) for p in self._positions_for(item, bloom))
                for item in items
            ):
                reports.append(
                    MatchReport(user_id=user_id, station_id=self._station_id, weight=None)
                )
        return reports
