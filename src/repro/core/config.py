"""Configuration of the DI-matching pipeline.

The parameters mirror the paper's Table I notation where applicable:

* ``sample_count`` — ``b``, the number of uniformly sampled points per pattern;
* ``hash_count`` — ``k``, the number of hash functions;
* ``bit_count`` / ``bits_per_element`` — ``m``, the filter length (fixed or auto-sized);
* ``epsilon`` — ``ε``, the user-specified approximation parameter of Eq. (2).

Extra switches control implementation choices the paper leaves open; each has an
ablation benchmark (see DESIGN.md §5).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.exceptions import ConfigurationError
from repro.utils.validation import require_non_negative, require_positive

#: Station-execution backends accepted by ``DIMatchingConfig.executor`` and the
#: distributed simulator (see :mod:`repro.distributed.executor`).
EXECUTOR_CHOICES = ("serial", "thread", "process")

#: Named fault profiles accepted by ``DIMatchingConfig.fault_profile``, the
#: distributed simulator and the CLI.  The plans themselves live in
#: :data:`repro.distributed.faults.FAULT_PROFILES` (which asserts its keys
#: match this tuple); only the names live here so the dependency-light core
#: package can validate configurations without importing the simulator.
FAULT_PROFILE_CHOICES = (
    "none",
    "lossy",
    "duplicating",
    "corrupting",
    "reordering",
    "straggler",
    "blackout",
    "chaos",
)

#: Transport backends accepted by ``TransportSpec.transport`` and the CLI:
#: "sim" is the deterministic event-driven simulator on a virtual clock
#: (:class:`~repro.distributed.network.SimulatedNetwork`), "tcp" runs the
#: stations as real localhost worker processes over asyncio sockets
#: (:mod:`repro.distributed.transport.tcp`).  Only the names live here so the
#: dependency-light core can validate configurations without importing either
#: backend.
TRANSPORT_CHOICES = ("sim", "tcp")

#: Drive modes of the declarative workload engine (:mod:`repro.workloads`):
#: "simulation" replays every round through the full event-driven transport
#: (:class:`~repro.distributed.simulator.DistributedSimulation`), "session"
#: drives an incremental :class:`~repro.core.streaming.ContinuousMatchingSession`
#: and ships only per-round deltas, and "open" is the open-system mode where
#: query-batch admissions are offered by arrival *time* (a rate-driven
#: virtual-clock queue, see ``WorkloadSpec.offered``) instead of closed-loop
#: round barriers.  Like the fault-profile names above, the choices live in
#: the dependency-light core so the CLI and configuration validation never
#: have to import the engine.
WORKLOAD_DRIVE_CHOICES = ("simulation", "session", "open")


@dataclass(frozen=True)
class DIMatchingConfig:
    """Immutable configuration shared by the encoder, matcher and aggregator."""

    #: ``b`` — sampled points per pattern (the paper converges at 5, is stable at 12).
    sample_count: int = 12
    #: ``k`` — number of hash functions.
    hash_count: int = 4
    #: ``ε`` — per-interval matching tolerance of Eq. (2); integer, as the paper
    #: restricts values to natural numbers.
    epsilon: int = 0
    #: Explicit filter length ``m`` in bits, used when ``auto_size`` is False.
    bit_count: int = 16384
    #: When True the encoder sizes the filter as ``bits_per_element × inserted items``.
    auto_size: bool = True
    #: Bits allocated per inserted item when auto-sizing.
    bits_per_element: int = 12
    #: Lower bound on the auto-sized filter length.
    min_bit_count: int = 1024
    #: Seed for the filter hash family (must be shared by center and stations).
    seed: int = 0
    #: Bit-storage backend for the distributed filters: "auto" (NumPy when
    #: available, pure Python otherwise), "python" or "numpy".  Only affects
    #: throughput — filters are bit-identical and wire-compatible across
    #: backends, so center and stations may even disagree on it.
    bit_backend: str = "auto"
    #: Station-execution backend for the distributed simulator: "serial" (one
    #: in-process shard per station, the historical behavior), "thread" or
    #: "process" (shards dispatched through ``concurrent.futures``).  Like
    #: ``bit_backend`` this is a local runtime knob: results and byte counts
    #: are identical across executors, only wall-clock changes, and the wire
    #: codec never ships it.
    executor: str = "serial"
    #: Number of station shards for the executor; 0 (auto) means one shard per
    #: station when serial, one per worker otherwise.
    shard_count: int = 0
    #: Fault profile of the simulated network (see
    #: :data:`repro.distributed.faults.FAULT_PROFILES`).  Like ``executor``
    #: this is a local simulation knob: it never travels on the wire and only
    #: affects which transport faults a round is exposed to, never what a
    #: surviving round computes.
    fault_profile: str = "none"
    #: Seed of the network fault injector.  Together with the dataset seed and
    #: the fault profile it fully determines the round's event transcript, so
    #: any simulated failure replays from these three values.
    net_seed: int = 0
    #: Hash ``(time index, accumulated value)`` tuples rather than bare values.  The
    #: accumulation transform already embeds order, but including the index removes
    #: residual cross-position collisions; the paper hashes values only, so this is
    #: exposed as an ablation switch.
    include_sample_index: bool = True
    #: Apply the accumulation transform (Eq. 3) before sampling and hashing.  Turning
    #: this off hashes raw interval values instead — the ablation for the paper's
    #: claim that accumulation is what distinguishes reordered time series.
    use_accumulation: bool = True
    #: Insert the ε-neighbourhood of every sampled value at encode time ("hash all
    #: the possible approximate values into WBF", Section IV-B).
    expand_epsilon: bool = True
    #: Width of the inserted ε-neighbourhood around each sampled accumulated value:
    #: "interval" inserts ``±ε`` (the default — candidates whose deviations are
    #: timing-like and largely cancel in accumulated form are matched without
    #: sacrificing discrimination), "accumulated" inserts ``±ε·(index+1)`` (the fully
    #: conservative band that can never miss an Eq.-2-similar candidate, at the cost
    #: of very wide bands at late time indices).
    epsilon_tolerance_mode: str = "interval"
    #: Drop duplicate combined patterns, keeping the one with the larger weight
    #: (duplicates arise when a query local fragment is all zeros).
    deduplicate_combinations: bool = True
    #: Upper bound on the number of local fragments per query; the combination count
    #: is ``2^l − 1`` (Eq. 4), so this caps encoder blow-up.
    max_local_patterns: int = 12

    def __post_init__(self) -> None:
        try:
            require_positive(self.sample_count, "sample_count")
            require_positive(self.hash_count, "hash_count")
            require_non_negative(self.epsilon, "epsilon")
            require_positive(self.bit_count, "bit_count")
            require_positive(self.bits_per_element, "bits_per_element")
            require_positive(self.min_bit_count, "min_bit_count")
            require_positive(self.max_local_patterns, "max_local_patterns")
        except (TypeError, ValueError) as error:
            raise ConfigurationError(str(error)) from error
        if not isinstance(self.epsilon, int):
            raise ConfigurationError(f"epsilon must be an integer, got {self.epsilon!r}")
        if self.bit_backend not in ("auto", "python", "numpy"):
            raise ConfigurationError(
                "bit_backend must be 'auto', 'python' or 'numpy', "
                f"got {self.bit_backend!r}"
            )
        if self.executor not in EXECUTOR_CHOICES:
            raise ConfigurationError(
                f"executor must be one of {EXECUTOR_CHOICES}, got {self.executor!r}"
            )
        if not isinstance(self.shard_count, int) or self.shard_count < 0:
            raise ConfigurationError(
                f"shard_count must be a non-negative integer (0 = auto), got {self.shard_count!r}"
            )
        if self.fault_profile not in FAULT_PROFILE_CHOICES:
            raise ConfigurationError(
                f"fault_profile must be one of {FAULT_PROFILE_CHOICES}, "
                f"got {self.fault_profile!r}"
            )
        if not isinstance(self.net_seed, int) or isinstance(self.net_seed, bool):
            raise ConfigurationError(f"net_seed must be an integer, got {self.net_seed!r}")
        if self.epsilon_tolerance_mode not in ("interval", "accumulated"):
            raise ConfigurationError(
                "epsilon_tolerance_mode must be 'interval' or 'accumulated', "
                f"got {self.epsilon_tolerance_mode!r}"
            )

    def filter_bit_count(self, item_count: int) -> int:
        """Filter length to use for ``item_count`` inserted items."""
        if not self.auto_size:
            return self.bit_count
        return max(self.min_bit_count, int(item_count) * self.bits_per_element)

    def with_updates(self, **changes: object) -> "DIMatchingConfig":
        """Return a copy of this configuration with the given fields replaced."""
        return replace(self, **changes)
