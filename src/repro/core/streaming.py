"""Continuous (incremental) matching for dynamically evolving station data.

The paper's Characteristic 2 and running example call for *online, near-real-time*
monitoring: communication data keep arriving at base stations, and the data center
wants the current top-K without recomputing everything from scratch.  Because the
per-station phase of any :class:`~repro.core.protocol.MatchingProtocol` depends only
on that station's own data and the (fixed) encoded query batch, the session below
caches per-station reports and recomputes only the stations whose data changed,
re-running only the cheap aggregation step to refresh the ranking.
"""

from __future__ import annotations

import warnings
from typing import Mapping, Sequence

from repro.core.protocol import MatchingProtocol, RankedResults
from repro.timeseries.pattern import PatternSet
from repro.timeseries.query import QueryPattern
from repro.utils.validation import require_non_empty


class ContinuousMatchingSession:
    """Incrementally maintained matching round for one query batch.

    .. deprecated::
        Direct construction emits a :class:`DeprecationWarning`; the
        ``repro.cluster.Cluster`` facade opens the same incremental machinery
        behind its session handle (``cluster.open_session(mode="deltas")``)
        and is the supported surface.

    The session encodes the query batch once, then accepts per-station data updates
    (replacing that station's stored pattern set) and serves the current ranked
    results on demand.  Only updated stations are re-matched; aggregation runs over
    the cached reports of every station.

    The session also maintains *wire deltas*: each update marks its station
    dirty, and :meth:`collect_deltas` re-encodes (through :mod:`repro.wire`)
    and returns only the dirty stations' report payloads — the bytes a real
    deployment would re-ship upstream.  Unchanged stations are neither
    re-matched nor re-encoded.
    """

    def __init__(self, protocol: MatchingProtocol, queries: Sequence[QueryPattern]) -> None:
        warnings.warn(
            "constructing ContinuousMatchingSession directly is deprecated; "
            "open one through the repro.cluster.Cluster facade instead "
            '(cluster.open_session(mode="deltas"))',
            DeprecationWarning,
            stacklevel=2,
        )
        self._init(protocol, queries)

    @classmethod
    def _internal(
        cls, protocol: MatchingProtocol, queries: Sequence[QueryPattern]
    ) -> "ContinuousMatchingSession":
        """Construct without the deprecation warning (facade-internal path)."""
        session = object.__new__(cls)
        session._init(protocol, queries)
        return session

    def _init(self, protocol: MatchingProtocol, queries: Sequence[QueryPattern]) -> None:
        if not isinstance(protocol, MatchingProtocol):
            raise TypeError(
                f"protocol must be a MatchingProtocol, got {type(protocol).__name__}"
            )
        require_non_empty(queries, "queries")
        self._protocol = protocol
        self._queries = tuple(queries)
        self._artifact = protocol.encode(list(queries))
        self._reports_by_station: dict[str, list[object]] = {}
        # The last pattern set each station reported, kept so a query-batch
        # rotation (replace_queries) can re-match every station in place.
        self._patterns_by_station: dict[str, PatternSet] = {}
        self._update_count = 0
        self._matching_runs = 0
        self._batch_encodings = 1
        # Wire-delta state: stations changed since the last collect_deltas(),
        # in update order, plus per-station encoded payload caches.
        self._dirty: dict[str, None] = {}
        self._encoded_reports: dict[str, bytes] = {}
        self._delta_bytes_shipped = 0
        self._encoding_runs = 0

    # -- properties ------------------------------------------------------------

    @property
    def protocol(self) -> MatchingProtocol:
        """The matching protocol driven by this session."""
        return self._protocol

    @property
    def queries(self) -> tuple[QueryPattern, ...]:
        """The (fixed) query batch this session answers."""
        return self._queries

    @property
    def artifact(self) -> object | None:
        """The encoded artifact distributed to stations (e.g. the WBF)."""
        return self._artifact

    @property
    def station_ids(self) -> list[str]:
        """Stations that have reported data so far."""
        return list(self._reports_by_station)

    @property
    def update_count(self) -> int:
        """Number of station updates applied."""
        return self._update_count

    @property
    def matching_runs(self) -> int:
        """Number of per-station matching executions performed (cache misses)."""
        return self._matching_runs

    @property
    def batch_encodings(self) -> int:
        """Number of query-batch encodings performed (1 + replace_queries calls)."""
        return self._batch_encodings

    # -- updates ---------------------------------------------------------------

    def update_station(self, station_id: str, patterns: PatternSet) -> int:
        """Replace ``station_id``'s stored patterns and re-run its matching phase.

        Returns the number of reports the station now contributes.  Stations not
        updated keep their cached reports, so a burst of updates at one cell does not
        trigger re-matching anywhere else.
        """
        if not isinstance(patterns, PatternSet):
            raise TypeError(f"patterns must be a PatternSet, got {type(patterns).__name__}")
        reports = self._protocol.station_match(station_id, patterns, self._artifact)
        key = str(station_id)
        self._reports_by_station[key] = list(reports)
        self._patterns_by_station[key] = patterns
        self._update_count += 1
        self._matching_runs += 1
        self._dirty[key] = None
        self._encoded_reports.pop(key, None)
        return len(reports)

    def remove_station(self, station_id: str) -> None:
        """Drop a station's cached reports (e.g. the station went offline)."""
        key = str(station_id)
        self._reports_by_station.pop(key, None)
        self._patterns_by_station.pop(key, None)
        self._update_count += 1
        self._dirty.pop(key, None)
        self._encoded_reports.pop(key, None)

    def replace_queries(self, queries: Sequence[QueryPattern]) -> None:
        """Rotate the session to a new query batch, re-matching every station.

        A long-running monitoring deployment does not answer one batch forever:
        campaigns end and new ones arrive.  Rotation re-encodes the artifact
        once, re-runs the matching phase of every station whose patterns the
        session has seen (their stored pattern sets are retained across
        updates), and marks them all dirty — the next
        :meth:`collect_deltas`/:meth:`ship_deltas` re-ships the whole round,
        exactly as a real redeployment would after a fresh dissemination.
        """
        require_non_empty(queries, "queries")
        self._queries = tuple(queries)
        self._artifact = self._protocol.encode(list(queries))
        self._batch_encodings += 1
        for key, patterns in self._patterns_by_station.items():
            reports = self._protocol.station_match(key, patterns, self._artifact)
            self._reports_by_station[key] = list(reports)
            self._matching_runs += 1
            self._dirty[key] = None
            self._encoded_reports.pop(key, None)

    # -- wire deltas -------------------------------------------------------------

    @property
    def dirty_station_ids(self) -> tuple[str, ...]:
        """Stations updated since the last :meth:`collect_deltas`, in update order."""
        return tuple(self._dirty)

    @property
    def delta_bytes_shipped(self) -> int:
        """Total wire bytes returned by :meth:`collect_deltas` so far."""
        return self._delta_bytes_shipped

    @property
    def encoding_runs(self) -> int:
        """Number of per-station report encodings performed (encode-cache misses)."""
        return self._encoding_runs

    def reports_for(self, station_id: str) -> list[object]:
        """A copy of one station's currently cached report list."""
        return list(self._reports_by_station.get(str(station_id), []))

    def mark_delivered(self, delivered: Mapping[str, int]) -> None:
        """Mark stations clean after an *external* transport shipped their deltas.

        ``delivered`` maps station id to the payload wire bytes that reached
        the center — the two-tier router ships deltas through its own tree of
        transports and settles the session's dirty/shipped ledger through
        this verb, exactly like :meth:`ship_deltas` settles the flat path.
        """
        for station_id, payload_bytes in delivered.items():
            self._dirty.pop(station_id, None)
            self._delta_bytes_shipped += int(payload_bytes)

    def encoded_reports_for(self, station_id: str) -> bytes:
        """The wire encoding of one station's cached reports (memoized)."""
        from repro import wire

        key = str(station_id)
        cached = self._encoded_reports.get(key)
        if cached is None:
            cached = wire.encode(list(self._reports_by_station.get(key, [])))
            self._encoded_reports[key] = cached
            self._encoding_runs += 1
        return cached

    def collect_deltas(self) -> dict[str, bytes]:
        """Encode and return the payloads of stations changed since the last call.

        Only dirty stations are (re-)encoded through the wire codec — a burst
        of updates at one cell re-ships one station's reports, not the whole
        round.  Returns ``station_id -> wire bytes`` in update order and clears
        the dirty set; the returned bytes decode back to the report lists via
        :func:`repro.wire.decode`.
        """
        deltas = {key: self.encoded_reports_for(key) for key in self._dirty}
        self._dirty.clear()
        self._delta_bytes_shipped += sum(len(data) for data in deltas.values())
        return deltas

    def ship_deltas(self, network, center) -> dict[str, bytes]:
        """Ship the dirty stations' reports to ``center`` through a transport.

        Each dirty station's cached reports travel as one encoded
        ``MATCH_REPORT`` message through the event-driven
        :class:`~repro.distributed.network.SimulatedNetwork` — exposed to its
        fault plan, retransmitted on loss/corruption, decoded by the center
        from real wire bytes.  Stations whose transfer completed are marked
        clean; a station whose transfer timed out (partial-delivery networks
        only) *stays dirty* so the next shipment retries it.  Returns
        ``station_id -> payload wire bytes`` for the stations that delivered;
        raises :class:`~repro.distributed.events.RoundTimeoutError` on a
        strict network that cannot converge.
        """
        # Imported lazily: core must not depend on distributed at module load
        # (distributed imports core).
        from repro.distributed.events import RoundTimeoutError
        from repro.distributed.messages import Message, MessageKind

        sends = []
        for station_id in self._dirty:
            message = Message(
                sender=station_id,
                recipient=center.node_id,
                kind=MessageKind.MATCH_REPORT,
                payload=list(self._reports_by_station.get(station_id, [])),
            )
            sends.append((message, center))
        try:
            outcome = network.gather(sends)
        except RoundTimeoutError as error:
            # Stations that delivered before the phase failed already sit
            # decoded in the center's inbox: mark them clean so a retry after
            # the error cannot re-ship them (exactly-once to the application).
            self._mark_shipped(sends, error.delivered_ids)
            raise
        return self._mark_shipped(sends, outcome.delivered_ids)

    def _mark_shipped(self, sends, delivered_ids) -> dict[str, bytes]:
        """Clear dirty flags and account bytes for the delivered stations."""
        delivered: dict[str, bytes] = {}
        for message, _receiver in sends:
            if message.sender in delivered_ids:
                payload = message.payload_wire()
                delivered[message.sender] = payload
                self._dirty.pop(message.sender, None)
                self._delta_bytes_shipped += len(payload)
        return delivered

    # -- queries ----------------------------------------------------------------

    def pending_reports(self) -> list[object]:
        """All cached reports across stations, in station-update order."""
        return [
            report
            for reports in self._reports_by_station.values()
            for report in reports
        ]

    def current_results(self, k: int | None = None) -> RankedResults:
        """Aggregate the cached reports into the current ranked top-K."""
        return self._protocol.aggregate(self.pending_reports(), k)

    def __repr__(self) -> str:
        return (
            f"ContinuousMatchingSession(protocol={self._protocol.name!r}, "
            f"queries={len(self._queries)}, stations={len(self._reports_by_station)}, "
            f"updates={self._update_count})"
        )
