"""Data-center side similarity ranking (Algorithm 3).

The data center sums the reported weights per user across base stations, deletes
sums that exceed 1 (the user's aggregated pattern is larger than the query pattern —
the paper's over-matching case), ranks users by weight sum in descending order and
returns the top-K.

When the batch contains several query patterns, the sums are formed per
``(user, query)`` pair — a user's fragments may legitimately relate to more than one
query pattern, and weights belonging to different queries must not be added together.
A user's ranking score is then the best surviving per-query sum (1 means a complete
match of some query's global pattern).

A base station may report more than one consistent weight for the same
``(user, query)`` when combinations of the query differ by less than ε at every
sampled point; the ranker resolves the ambiguity by selecting exactly one weight per
reporting station so as to maximise the sum without exceeding 1.
"""

from __future__ import annotations

from fractions import Fraction
from itertools import product
from typing import Mapping, Sequence

from repro.core.exceptions import MatchingError
from repro.core.protocol import MatchReport, RankedResults, RankedUser

try:  # pragma: no cover - exercised indirectly through the columnar path
    import numpy as _np
except ImportError:  # pragma: no cover - the CI matrix covers the no-NumPy leg
    _np = None

#: Maximum number of per-station weight combinations enumerated exactly; beyond this
#: the per-station option lists are truncated to their largest entries.
_MAX_ASSIGNMENT_ENUMERATION = 4096
#: Maximum options kept per station when truncating.
_MAX_OPTIONS_PER_STATION = 4

#: Reports below this count stay on the plain dict-merge path: interning and
#: sorting overheads only pay off on bulk rounds.
_COLUMNAR_MIN_REPORTS = 64
#: Bits reserved per code component when packing (user·query, station, weight)
#: triples into one int64 for the vectorized sort/dedup.
_CODE_BITS = 21
_CODE_LIMIT = 1 << _CODE_BITS
_CODE_MASK = _CODE_LIMIT - 1


class SimilarityRanker:
    """Implements Algorithm 3: weight aggregation and top-K ranking."""

    def __init__(self, max_weight_sum: Fraction = Fraction(1)) -> None:
        if not isinstance(max_weight_sum, Fraction):
            raise TypeError(
                f"max_weight_sum must be a Fraction, got {type(max_weight_sum).__name__}"
            )
        if max_weight_sum <= 0:
            raise ValueError(f"max_weight_sum must be positive, got {max_weight_sum}")
        self._max_weight_sum = max_weight_sum

    @property
    def max_weight_sum(self) -> Fraction:
        """Per-query weight sums above this bound are discarded (the paper uses 1)."""
        return self._max_weight_sum

    def weight_options(
        self, reports: Sequence[MatchReport]
    ) -> dict[tuple[str, str], dict[str, set[Fraction]]]:
        """Group reports into ``(user, query) -> station -> candidate weights``."""
        options: dict[tuple[str, str], dict[str, set[Fraction]]] = {}
        for report in reports:
            if report.weight is None:
                raise MatchingError(
                    f"report for user {report.user_id!r} carries no weight; "
                    "SimilarityRanker requires weighted reports"
                )
            per_station = options.setdefault((report.user_id, report.query_id), {})
            per_station.setdefault(report.station_id, set()).add(report.weight)
        return options

    def best_weight_sum(
        self, options_by_station: Mapping[str, set[Fraction]]
    ) -> Fraction | None:
        """Best achievable weight sum that does not exceed :attr:`max_weight_sum`.

        Exactly one weight is chosen from every reporting station (every reporting
        fragment is part of the user's data and must be accounted for); the sum is
        maximised subject to the bound.  ``None`` means every assignment exceeds the
        bound — the over-matching case Algorithm 3 deletes.
        """
        if all(len(weights) == 1 for weights in options_by_station.values()):
            # The overwhelmingly common case: one candidate weight per station
            # means exactly one assignment — sum it directly instead of going
            # through sorting and product enumeration.
            total = sum(
                (next(iter(weights)) for weights in options_by_station.values()),
                Fraction(0),
            )
            return None if total > self._max_weight_sum else total
        option_lists = [sorted(weights, reverse=True) for weights in options_by_station.values()]
        combination_count = 1
        for option_list in option_lists:
            combination_count *= len(option_list)
        if combination_count > _MAX_ASSIGNMENT_ENUMERATION:
            option_lists = [
                option_list[:_MAX_OPTIONS_PER_STATION] for option_list in option_lists
            ]
        best: Fraction | None = None
        for assignment in product(*option_lists):
            total = sum(assignment, Fraction(0))
            if total > self._max_weight_sum:
                continue
            if best is None or total > best:
                best = total
        return best

    #: Class-level switch for the columnar (NumPy) aggregation path.  Benchmarks
    #: flip it off to measure the per-report dict-merge path; scores are
    #: identical either way (see :meth:`_user_scores_columnar`).
    COLUMNAR_ENABLED = True

    def user_scores(self, reports: Sequence[MatchReport]) -> dict[str, Fraction]:
        """Best surviving per-query weight sum for every reported user.

        Per-query sums above :attr:`max_weight_sum` are deleted (over-matching); a
        user with no surviving sum is dropped entirely.
        """
        if (
            self.COLUMNAR_ENABLED
            and _np is not None
            and len(reports) >= _COLUMNAR_MIN_REPORTS
        ):
            columnar = self._user_scores_columnar(reports)
            if columnar is not None:
                return columnar
        best: dict[str, Fraction] = {}
        for (user_id, _query_id), per_station in self.weight_options(reports).items():
            weight_sum = self.best_weight_sum(per_station)
            if weight_sum is None:
                continue
            current = best.get(user_id)
            if current is None or weight_sum > current:
                best[user_id] = weight_sum
        return best

    def _user_scores_columnar(
        self, reports: Sequence[MatchReport]
    ) -> dict[str, Fraction] | None:
        """Columnar scoring: intern ids to codes, sort/dedup as one int64 array.

        Produces exactly the scores of the dict-merge path: grouping happens by
        packing ``(user·query, station, weight)`` codes into one integer and
        sorting, station-singleton groups (the common case) sum their exact
        :class:`Fraction` weights directly, and any group where a station
        reported several candidate weights falls back to
        :meth:`best_weight_sum` for the bounded assignment enumeration.
        Returns ``None`` when a code space overflows its packed width — the
        caller then uses the plain path.
        """
        uq_codes: dict[tuple[str, str], int] = {}
        uq_list: list[tuple[str, str]] = []
        station_codes: dict[str, int] = {}
        station_list: list[str] = []
        weight_codes: dict[Fraction, int] = {}
        weight_list: list[Fraction] = []
        count = len(reports)
        uq_arr = _np.empty(count, dtype=_np.int64)
        st_arr = _np.empty(count, dtype=_np.int64)
        w_arr = _np.empty(count, dtype=_np.int64)
        for index, report in enumerate(reports):
            if report.weight is None:
                raise MatchingError(
                    f"report for user {report.user_id!r} carries no weight; "
                    "SimilarityRanker requires weighted reports"
                )
            key = (report.user_id, report.query_id)
            code = uq_codes.get(key)
            if code is None:
                code = len(uq_list)
                uq_codes[key] = code
                uq_list.append(key)
            uq_arr[index] = code
            station_code = station_codes.get(report.station_id)
            if station_code is None:
                station_code = len(station_list)
                station_codes[report.station_id] = station_code
                station_list.append(report.station_id)
            st_arr[index] = station_code
            weight_code = weight_codes.get(report.weight)
            if weight_code is None:
                weight_code = len(weight_list)
                weight_codes[report.weight] = weight_code
                weight_list.append(report.weight)
            w_arr[index] = weight_code
        if (
            len(uq_list) >= _CODE_LIMIT
            or len(station_list) >= _CODE_LIMIT
            or len(weight_list) >= _CODE_LIMIT
        ):
            return None
        packed = (uq_arr << (2 * _CODE_BITS)) | (st_arr << _CODE_BITS) | w_arr
        unique = _np.unique(packed)  # sorted + deduplicated triples
        uq_sorted = unique >> (2 * _CODE_BITS)
        st_sorted = (unique >> _CODE_BITS) & _CODE_MASK
        w_sorted = unique & _CODE_MASK
        starts = _np.flatnonzero(
            _np.r_[True, uq_sorted[1:] != uq_sorted[:-1]]
        )
        ends = _np.r_[starts[1:], len(unique)]
        spans: dict[int, tuple[int, int]] = {
            int(uq_sorted[start]): (int(start), int(end))
            for start, end in zip(starts, ends)
        }
        best: dict[str, Fraction] = {}
        bound = self._max_weight_sum
        for code, (user_id, _query_id) in enumerate(uq_list):
            start, end = spans[code]
            station_slice = st_sorted[start:end]
            weight_slice = w_sorted[start:end].tolist()
            if end - start == 1 or bool(
                (station_slice[1:] != station_slice[:-1]).all()
            ):
                # Every station reported one distinct weight: the single
                # possible assignment, summed with exact Fractions.
                total = sum(
                    (weight_list[weight_code] for weight_code in weight_slice),
                    Fraction(0),
                )
                if total > bound:
                    continue
            else:
                per_station: dict[str, set[Fraction]] = {}
                for station_code, weight_code in zip(
                    station_slice.tolist(), weight_slice
                ):
                    per_station.setdefault(station_list[station_code], set()).add(
                        weight_list[weight_code]
                    )
                maybe_total = self.best_weight_sum(per_station)
                if maybe_total is None:
                    continue
                total = maybe_total
            current = best.get(user_id)
            if current is None or total > current:
                best[user_id] = total
        return best

    def aggregate(
        self, reports: Sequence[MatchReport], k: int | None = None
    ) -> RankedResults:
        """Aggregate reports into the ranked top-K result.

        ``k=None`` returns every surviving user (sorted); otherwise the first ``k``.
        Ties are broken by user id so results are deterministic.
        """
        scores = self.user_scores(reports)
        ordered = sorted(scores.items(), key=lambda entry: (-entry[1], entry[0]))
        ranked = tuple(
            RankedUser(user_id=user_id, score=float(weight_sum))
            for user_id, weight_sum in ordered
        )
        results = RankedResults(ranked)
        if k is None:
            return results
        if k < 0:
            raise ValueError(f"k must be >= 0, got {k}")
        return results.top(k)
