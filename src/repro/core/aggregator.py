"""Data-center side similarity ranking (Algorithm 3).

The data center sums the reported weights per user across base stations, deletes
sums that exceed 1 (the user's aggregated pattern is larger than the query pattern —
the paper's over-matching case), ranks users by weight sum in descending order and
returns the top-K.

When the batch contains several query patterns, the sums are formed per
``(user, query)`` pair — a user's fragments may legitimately relate to more than one
query pattern, and weights belonging to different queries must not be added together.
A user's ranking score is then the best surviving per-query sum (1 means a complete
match of some query's global pattern).

A base station may report more than one consistent weight for the same
``(user, query)`` when combinations of the query differ by less than ε at every
sampled point; the ranker resolves the ambiguity by selecting exactly one weight per
reporting station so as to maximise the sum without exceeding 1.
"""

from __future__ import annotations

from fractions import Fraction
from itertools import product
from typing import Mapping, Sequence

from repro.core.exceptions import MatchingError
from repro.core.protocol import MatchReport, RankedResults, RankedUser

#: Maximum number of per-station weight combinations enumerated exactly; beyond this
#: the per-station option lists are truncated to their largest entries.
_MAX_ASSIGNMENT_ENUMERATION = 4096
#: Maximum options kept per station when truncating.
_MAX_OPTIONS_PER_STATION = 4


class SimilarityRanker:
    """Implements Algorithm 3: weight aggregation and top-K ranking."""

    def __init__(self, max_weight_sum: Fraction = Fraction(1)) -> None:
        if not isinstance(max_weight_sum, Fraction):
            raise TypeError(
                f"max_weight_sum must be a Fraction, got {type(max_weight_sum).__name__}"
            )
        if max_weight_sum <= 0:
            raise ValueError(f"max_weight_sum must be positive, got {max_weight_sum}")
        self._max_weight_sum = max_weight_sum

    @property
    def max_weight_sum(self) -> Fraction:
        """Per-query weight sums above this bound are discarded (the paper uses 1)."""
        return self._max_weight_sum

    def weight_options(
        self, reports: Sequence[MatchReport]
    ) -> dict[tuple[str, str], dict[str, set[Fraction]]]:
        """Group reports into ``(user, query) -> station -> candidate weights``."""
        options: dict[tuple[str, str], dict[str, set[Fraction]]] = {}
        for report in reports:
            if report.weight is None:
                raise MatchingError(
                    f"report for user {report.user_id!r} carries no weight; "
                    "SimilarityRanker requires weighted reports"
                )
            per_station = options.setdefault((report.user_id, report.query_id), {})
            per_station.setdefault(report.station_id, set()).add(report.weight)
        return options

    def best_weight_sum(
        self, options_by_station: Mapping[str, set[Fraction]]
    ) -> Fraction | None:
        """Best achievable weight sum that does not exceed :attr:`max_weight_sum`.

        Exactly one weight is chosen from every reporting station (every reporting
        fragment is part of the user's data and must be accounted for); the sum is
        maximised subject to the bound.  ``None`` means every assignment exceeds the
        bound — the over-matching case Algorithm 3 deletes.
        """
        option_lists = [sorted(weights, reverse=True) for weights in options_by_station.values()]
        combination_count = 1
        for option_list in option_lists:
            combination_count *= len(option_list)
        if combination_count > _MAX_ASSIGNMENT_ENUMERATION:
            option_lists = [
                option_list[:_MAX_OPTIONS_PER_STATION] for option_list in option_lists
            ]
        best: Fraction | None = None
        for assignment in product(*option_lists):
            total = sum(assignment, Fraction(0))
            if total > self._max_weight_sum:
                continue
            if best is None or total > best:
                best = total
        return best

    def user_scores(self, reports: Sequence[MatchReport]) -> dict[str, Fraction]:
        """Best surviving per-query weight sum for every reported user.

        Per-query sums above :attr:`max_weight_sum` are deleted (over-matching); a
        user with no surviving sum is dropped entirely.
        """
        best: dict[str, Fraction] = {}
        for (user_id, _query_id), per_station in self.weight_options(reports).items():
            weight_sum = self.best_weight_sum(per_station)
            if weight_sum is None:
                continue
            current = best.get(user_id)
            if current is None or weight_sum > current:
                best[user_id] = weight_sum
        return best

    def aggregate(
        self, reports: Sequence[MatchReport], k: int | None = None
    ) -> RankedResults:
        """Aggregate reports into the ranked top-K result.

        ``k=None`` returns every surviving user (sorted); otherwise the first ``k``.
        Ties are broken by user id so results are deterministic.
        """
        scores = self.user_scores(reports)
        ordered = sorted(scores.items(), key=lambda entry: (-entry[1], entry[0]))
        ranked = tuple(
            RankedUser(user_id=user_id, score=float(weight_sum))
            for user_id, weight_sum in ordered
        )
        results = RankedResults(ranked)
        if k is None:
            return results
        if k < 0:
            raise ValueError(f"k must be >= 0, got {k}")
        return results.top(k)
