"""Common interface shared by DI-matching and the baseline protocols.

Every matching method is expressed as three phases matching the paper's Figure 2:

1. ``encode`` — at the data center, turn the query batch into an artifact to
   distribute (a WBF, a plain BF, or nothing for the naive method);
2. ``station_match`` — at each base station, produce the reports to send back
   (matched ``(id, weight)`` pairs, matched ids, or the raw local patterns);
3. ``aggregate`` — at the data center, combine all reports into a ranked top-K.

The :class:`repro.distributed.simulator.DistributedSimulation` drives any protocol
through these phases while accounting for communication, storage and time.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from fractions import Fraction
from typing import Sequence

from repro.timeseries.pattern import PatternSet
from repro.timeseries.query import QueryPattern
from repro.utils.serialization import sizeof_float, sizeof_id


@dataclass(frozen=True)
class MatchReport:
    """A base station's report for one matched user.

    ``weight`` is the matched pattern weight for DI-matching, or ``None`` for
    weight-less protocols (the plain-BF baseline).  ``query_id`` qualifies the weight
    by the query pattern set it was read from; it is empty for single-query use and
    for weight-less reports.
    """

    user_id: str
    station_id: str
    weight: Fraction | None = None
    query_id: str = ""

    def size_bytes(self) -> int:
        """Uplink size: the user id plus (if present) one weight value and its query id."""
        size = sizeof_id()
        if self.weight is not None:
            size += sizeof_float()
        if self.query_id:
            size += sizeof_id()
        return size


@dataclass(frozen=True)
class RankedUser:
    """One entry of a ranked result list."""

    user_id: str
    score: float


@dataclass(frozen=True)
class RankedResults:
    """An ordered (descending score) list of retrieved users."""

    users: tuple[RankedUser, ...]

    def __len__(self) -> int:
        return len(self.users)

    def __iter__(self):
        return iter(self.users)

    def user_ids(self) -> list[str]:
        """Retrieved user ids in rank order."""
        return [entry.user_id for entry in self.users]

    def top(self, k: int) -> "RankedResults":
        """The first ``k`` entries."""
        if k < 0:
            raise ValueError(f"k must be >= 0, got {k}")
        return RankedResults(self.users[:k])


class MatchingProtocol(ABC):
    """A distributed pattern-matching method expressed as encode / match / aggregate."""

    @property
    @abstractmethod
    def name(self) -> str:
        """Short method name used in reports ("wbf", "bf", "naive", ...)."""

    @abstractmethod
    def encode(self, queries: Sequence[QueryPattern]) -> object | None:
        """Build the artifact the data center distributes to every base station."""

    @abstractmethod
    def station_match(
        self, station_id: str, patterns: PatternSet, artifact: object | None
    ) -> list[object]:
        """Run the per-station phase and return the reports to send to the center."""

    @abstractmethod
    def aggregate(self, reports: Sequence[object], k: int | None) -> RankedResults:
        """Combine all stations' reports into the final ranked top-K result."""
