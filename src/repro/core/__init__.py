"""DI-matching: the paper's core contribution.

The package contains the Weighted Bloom Filter (:mod:`repro.core.wbf`), the
data-center encoder (Algorithm 1), the base-station matcher (Algorithm 2), the
similarity ranker (Algorithm 3) and the :class:`DIMatchingProtocol` that ties them
together behind the common :class:`~repro.core.protocol.MatchingProtocol` interface
shared with the baselines.
"""

from repro.core.aggregator import SimilarityRanker
from repro.core.config import DIMatchingConfig
from repro.core.dimatching import DIMatchingProtocol, run_dimatching
from repro.core.encoder import EncodedQueryBatch, PatternEncoder
from repro.core.exceptions import ConfigurationError, EncodingError, MatchingError, ReproError
from repro.core.matcher import BaseStationMatcher
from repro.core.protocol import (
    MatchingProtocol,
    MatchReport,
    RankedResults,
    RankedUser,
)
from repro.core.streaming import ContinuousMatchingSession
from repro.core.wbf import WeightedBloomFilter
from repro.timeseries.query import QueryPattern

__all__ = [
    "SimilarityRanker",
    "DIMatchingConfig",
    "DIMatchingProtocol",
    "run_dimatching",
    "EncodedQueryBatch",
    "PatternEncoder",
    "ConfigurationError",
    "EncodingError",
    "MatchingError",
    "ReproError",
    "BaseStationMatcher",
    "MatchingProtocol",
    "MatchReport",
    "RankedResults",
    "RankedUser",
    "ContinuousMatchingSession",
    "WeightedBloomFilter",
    "QueryPattern",
]
