"""Data-center side pattern representation and encoding (Algorithm 1).

Given a batch of query patterns, the encoder

1. enumerates every non-empty combination of each query's local fragments (Eq. 4) —
   each combination is a pattern a target user's *single-station* fragment could
   legitimately equal;
2. transforms every combined pattern into accumulated form (Eq. 3);
3. assigns each combined pattern the weight ``max accumulated value of the
   combination / max accumulated value of the query's global pattern`` (an exact
   fraction, so disjoint fragments of a true target sum to exactly 1);
4. uniformly samples ``b`` points per pattern and hashes each sampled value (and,
   when ε > 0, its tolerance neighbourhood) into a single Weighted Bloom Filter with
   the pattern's weight attached.

When several query patterns are encoded into one filter (the batch case of Figure 4)
the attached weight is *qualified by the query id* — the filter stores
``(query_id, Fraction)`` pairs — so that Algorithm 3's weight-sum rule is applied per
query and weights belonging to different query patterns are never summed together.
With a single query this degenerates to the paper's plain weight.

The same item-enumeration logic is reused by the plain-Bloom-filter baseline (which
simply ignores the weights).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Iterator, Sequence

from repro.bloom.standard import BloomFilter
from repro.core.config import DIMatchingConfig
from repro.core.exceptions import EncodingError
from repro.core.wbf import WeightedBloomFilter
from repro.timeseries.combinations import enumerate_pattern_combinations
from repro.timeseries.query import QueryPattern
from repro.timeseries.sampling import uniform_sample_indices
from repro.timeseries.transform import accumulate
from repro.utils.validation import require_non_empty


@dataclass(frozen=True)
class CombinedQueryPattern:
    """One combination of a query's local fragments, in its encoded (accumulated) form.

    When the accumulation transform is disabled (ablation), ``accumulated`` holds the
    raw interval values instead.
    """

    query_id: str
    accumulated: tuple[int, ...]
    weight: Fraction


@dataclass(frozen=True)
class EncodedQueryBatch:
    """The artifact distributed to base stations: one WBF plus its parameters."""

    wbf: WeightedBloomFilter
    config: DIMatchingConfig
    pattern_length: int
    query_count: int
    combined_pattern_count: int
    inserted_item_count: int

    def size_bytes(self) -> int:
        """Estimate-model size of the batch (the contained WBF's estimate).

        The simulator charges the *real* wire encoding
        (``repro.wire.encoded_size``); this estimate remains as the
        cross-checked baseline of the legacy cost model.
        """
        return self.wbf.size_bytes()


class PatternEncoder:
    """Implements the data-center side of DI-matching (Algorithm 1)."""

    def __init__(self, config: DIMatchingConfig | None = None) -> None:
        self._config = config or DIMatchingConfig()

    @property
    def config(self) -> DIMatchingConfig:
        """The pipeline configuration in use."""
        return self._config

    # -- pattern representation -------------------------------------------------

    def combined_patterns(self, query: QueryPattern) -> list[CombinedQueryPattern]:
        """Enumerate, accumulate and weight the combinations of one query (steps 1-3)."""
        if query.station_count > self._config.max_local_patterns:
            raise EncodingError(
                f"query {query.query_id!r} has {query.station_count} local fragments; "
                f"the configured maximum is {self._config.max_local_patterns} "
                f"(the combination count 2^l - 1 would be too large)"
            )
        global_total = sum(query.global_pattern.values)
        if global_total <= 0:
            raise EncodingError(
                f"query {query.query_id!r} has an all-zero global pattern and cannot be encoded"
            )
        combos = enumerate_pattern_combinations(list(query.local_patterns))
        results: list[CombinedQueryPattern] = []
        best_by_shape: dict[tuple[int, ...], CombinedQueryPattern] = {}
        for combo in combos:
            accumulated = (
                tuple(accumulate(combo.values))
                if self._config.use_accumulation
                else tuple(combo.values)
            )
            weight = Fraction(sum(combo.values), global_total)
            if weight == 0:
                # An all-zero combination (a fragment with no activity) carries no
                # information and would attach weight 0 to the zero-prefix bits.
                continue
            candidate = CombinedQueryPattern(
                query_id=query.query_id, accumulated=accumulated, weight=weight
            )
            if self._config.deduplicate_combinations:
                existing = best_by_shape.get(accumulated)
                if existing is None or candidate.weight > existing.weight:
                    best_by_shape[accumulated] = candidate
            else:
                results.append(candidate)
        if self._config.deduplicate_combinations:
            results = list(best_by_shape.values())
        if not results:
            raise EncodingError(
                f"query {query.query_id!r} produced no non-zero combined patterns"
            )
        return results

    # -- item enumeration ---------------------------------------------------------

    def sample_indices(self, pattern_length: int) -> list[int]:
        """The shared sampled time indices for patterns of the given length."""
        return uniform_sample_indices(pattern_length, self._config.sample_count)

    def items_for_accumulated(self, accumulated: Sequence[int]) -> list[object]:
        """The hashable items a *candidate* pattern probes (no ε expansion).

        Base stations call this (through the matcher) on the accumulated form of each
        locally stored pattern; the encoder applies the ε expansion on the insert
        side only, so candidates probe their exact values.
        """
        items: list[object] = []
        for index in self.sample_indices(len(accumulated)):
            value = accumulated[index]
            items.append((index, value) if self._config.include_sample_index else value)
        return items

    def _insert_items_for_pattern(
        self, combined: CombinedQueryPattern
    ) -> Iterator[tuple[object, tuple[str, Fraction]]]:
        """Yield every (item, qualified weight) pair Algorithm 1 inserts for one pattern."""
        epsilon = self._config.epsilon
        qualified_weight = (combined.query_id, combined.weight)
        for index in self.sample_indices(len(combined.accumulated)):
            value = combined.accumulated[index]
            if self._config.expand_epsilon and epsilon > 0:
                # "Hash all the possible approximate values into WBF" (Section IV-B):
                # the tolerance band around the sampled accumulated value is ±ε in the
                # default "interval" mode, or the fully conservative ±ε·(index+1) in
                # "accumulated" mode (see DIMatchingConfig.epsilon_tolerance_mode).
                if self._config.epsilon_tolerance_mode == "accumulated":
                    tolerance = epsilon * (index + 1)
                else:
                    tolerance = epsilon
                values = range(max(0, value - tolerance), value + tolerance + 1)
            else:
                values = (value,)
            for candidate_value in values:
                item = (
                    (index, candidate_value)
                    if self._config.include_sample_index
                    else candidate_value
                )
                yield item, qualified_weight

    def enumerate_insertions(
        self, queries: Sequence[QueryPattern]
    ) -> tuple[list[tuple[object, tuple[str, Fraction]]], int, int]:
        """All (item, qualified weight) insertions for a query batch.

        Returns ``(insertions, pattern_length, combined_pattern_count)``.  All queries
        in a batch must cover the same number of intervals, since base stations sample
        candidate patterns at indices derived from the shared pattern length.
        """
        require_non_empty(queries, "queries")
        query_ids = [query.query_id for query in queries]
        if len(set(query_ids)) != len(query_ids):
            raise EncodingError("query ids within a batch must be unique")
        lengths = {query.length for query in queries}
        if len(lengths) != 1:
            raise EncodingError(
                f"all queries in a batch must have the same length, got lengths {sorted(lengths)}"
            )
        (pattern_length,) = lengths
        insertions: list[tuple[object, tuple[str, Fraction]]] = []
        combined_count = 0
        for query in queries:
            for combined in self.combined_patterns(query):
                combined_count += 1
                insertions.extend(self._insert_items_for_pattern(combined))
        return insertions, pattern_length, combined_count

    # -- filter construction -------------------------------------------------------

    def encode_batch(self, queries: Sequence[QueryPattern]) -> EncodedQueryBatch:
        """Algorithm 1: build the Weighted Bloom Filter for a query batch.

        Insertions are grouped by qualified weight and fed through the batched
        :meth:`~repro.core.wbf.WeightedBloomFilter.insert_many` path, so the
        ``n × k`` hash positions of each group are computed and written in one
        vectorized call instead of item-by-item.
        """
        insertions, pattern_length, combined_count = self.enumerate_insertions(queries)
        bit_count = self._config.filter_bit_count(len(insertions))
        wbf = WeightedBloomFilter(
            bit_count=bit_count,
            hash_count=self._config.hash_count,
            seed=self._config.seed,
            backend=self._config.bit_backend,
        )
        by_weight: dict[tuple[str, Fraction], list[object]] = {}
        for item, weight in insertions:
            by_weight.setdefault(weight, []).append(item)
        for weight, items in by_weight.items():
            wbf.insert_many(items, weight)
        return EncodedQueryBatch(
            wbf=wbf,
            config=self._config,
            pattern_length=pattern_length,
            query_count=len(queries),
            combined_pattern_count=combined_count,
            inserted_item_count=len(insertions),
        )

    def encode_batch_plain(self, queries: Sequence[QueryPattern]) -> BloomFilter:
        """Encode the same insertions into a plain Bloom filter (the BF baseline)."""
        insertions, _, _ = self.enumerate_insertions(queries)
        bit_count = self._config.filter_bit_count(len(insertions))
        bloom = BloomFilter(
            bit_count=bit_count,
            hash_count=self._config.hash_count,
            seed=self._config.seed,
            backend=self._config.bit_backend,
        )
        bloom.add_many([item for item, _weight in insertions])
        return bloom
