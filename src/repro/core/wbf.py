"""Weighted Bloom Filter (WBF) — the paper's novel data structure.

A WBF is a Bloom filter in which every set bit additionally carries the weights of
the values hashed onto it ("each bit with 1 ... has a pointer pointing to the weight
of corresponding hashed values", Section II-B).  Insertion attaches the inserted
value's weight to each of its ``k`` bits; a *weighted query* returns the set of
weights consistent with **all** ``k`` bits of the probed value — empty if any bit is
0, or if the bits are 1 but share no common weight (which is how the WBF suppresses
the cross-pattern false positives a plain Bloom filter accepts).

The structure is agnostic to the weight type: any hashable value can be attached.
DI-matching uses exact :class:`fractions.Fraction` weights qualified by the query
they belong to (``(query_id, Fraction)`` tuples) so that the aggregation rule of
Algorithm 3 ("delete IDs whose weight sum exceeds 1") can test equality without
floating-point tolerance and without mixing weights across unrelated query patterns.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Sequence

from repro.bloom.analysis import expected_false_positive_rate
from repro.bloom.bitset import BitArray
from repro.bloom.hashing import HashFamily
from repro.utils.serialization import FLOAT_BYTES
from repro.utils.validation import require_positive


class WeightedBloomFilter:
    """Bloom filter whose set bits carry the weights of the values that set them.

    ``backend`` selects the bit-storage backend ("auto", "python" or "numpy",
    see :mod:`repro.bloom.backend`); "auto" uses NumPy when available.  The
    weight map is a sparse Python dict on every backend — only the bit array and
    the position arithmetic are vectorized.
    """

    def __init__(
        self, bit_count: int, hash_count: int, seed: int = 0, backend: str = "auto"
    ) -> None:
        require_positive(bit_count, "bit_count")
        require_positive(hash_count, "hash_count")
        self._bits = BitArray(bit_count, backend=backend)
        self._hashes = HashFamily(hash_count, bit_count, seed=seed)
        # Sparse map: bit index -> weights attached to that bit.  Values are
        # plain sets when built by insertion; filters decoded from the wire
        # hold interned frozensets shared across positions (copy-on-write: an
        # insertion replaces the frozenset with a mutable copy for that
        # position only).
        self._weights: dict[int, "set[Hashable] | frozenset"] = {}
        self._item_count = 0
        self._revision = 0
        # revision -> (weights tuple, position mask dict, mask->frozenset memo);
        # see _weight_mask_index.
        self._mask_index: tuple[int, tuple, dict[int, int], dict[int, frozenset]] | None = None

    # -- properties ------------------------------------------------------------

    @property
    def bit_count(self) -> int:
        """Filter length ``m`` in bits."""
        return len(self._bits)

    @property
    def hash_count(self) -> int:
        """Number of hash functions ``k``."""
        return self._hashes.hash_count

    @property
    def seed(self) -> int:
        """Seed of the hash family (shared between center and stations)."""
        return self._hashes.seed

    @property
    def item_count(self) -> int:
        """Number of (value, weight) insertions performed."""
        return self._item_count

    @property
    def hash_family(self) -> HashFamily:
        """The hash family used by this filter."""
        return self._hashes

    @property
    def backend_name(self) -> str:
        """Name of the bit-storage backend in use."""
        return self._bits.backend_name

    @property
    def revision(self) -> int:
        """Mutation counter, bumped by every insertion.

        The wire codec keys its per-object encoding cache on this, so encoding
        a filter, mutating it, and encoding again can never serve stale bytes.
        """
        return self._revision

    # -- construction from wire state ----------------------------------------------

    @classmethod
    def from_state(
        cls,
        bit_count: int,
        hash_count: int,
        seed: int,
        bits: bytes,
        weights: dict[int, frozenset],
        item_count: int,
        backend: str = "auto",
    ) -> "WeightedBloomFilter":
        """Reconstruct a filter from decoded wire state.

        ``bits`` is the canonical bit-array serialization and ``weights`` maps
        bit positions to the weight sets attached there; ``backend`` is the
        local storage choice and never travels on the wire.
        """
        wbf = cls(bit_count, hash_count, seed=seed, backend=backend)
        wbf._bits = BitArray.from_bytes(bit_count, bits, backend=backend)
        # Keep decoded frozensets by reference: the codec interns one frozenset
        # per distinct index combination, so positions sharing a weight set
        # share one object instead of each copying it into a fresh set.
        # Insertions copy-on-write (see :meth:`add`).
        wbf._weights = {
            int(position): attached if type(attached) is frozenset else set(attached)
            for position, attached in weights.items()
        }
        wbf._item_count = int(item_count)
        return wbf

    def weight_entries(self) -> list[tuple[int, frozenset]]:
        """The sparse weight map as ``(position, weights)`` pairs, positions ascending.

        This is the canonical iteration order the wire codec serializes, so two
        filters holding the same weights produce identical bytes regardless of
        insertion order or bit backend.
        """
        return [
            (position, frozenset(self._weights[position]))
            for position in sorted(self._weights)
        ]

    def __eq__(self, other: object) -> bool:
        """Structural equality: parameters, bits and weight map (backend-agnostic)."""
        if not isinstance(other, WeightedBloomFilter):
            return NotImplemented
        return (
            self.bit_count == other.bit_count
            and self.hash_count == other.hash_count
            and self.seed == other.seed
            and self._item_count == other._item_count
            and self._bits.to_bytes() == other._bits.to_bytes()
            and {p: frozenset(w) for p, w in self._weights.items()}
            == {p: frozenset(w) for p, w in other._weights.items()}
        )

    __hash__ = None  # mutable: adding items changes equality

    # -- insertion ---------------------------------------------------------------

    def add(self, item: object, weight: Hashable) -> None:
        """Insert ``item`` and attach ``weight`` to each of its bits."""
        try:
            hash(weight)
        except TypeError as error:
            raise TypeError(
                f"weight must be hashable, got {type(weight).__name__}"
            ) from error
        weights = self._weights
        for position in self._hashes.positions(item):
            self._bits.set(position)
            attached = weights.get(position)
            if attached is None:
                weights[position] = {weight}
            elif type(attached) is frozenset:
                # Copy-on-write: this position held a frozenset shared with
                # other positions by the wire decoder; give it a private
                # mutable copy before touching it.
                mutable = set(attached)
                mutable.add(weight)
                weights[position] = mutable
            else:
                attached.add(weight)
        self._item_count += 1
        self._revision += 1

    def add_many(self, items: Iterable[object], weight: Hashable) -> None:
        """Insert every item of ``items`` with the same ``weight`` (batched)."""
        self.insert_many(items, weight)

    def insert_many(self, items: Iterable[object], weight: Hashable) -> None:
        """Batched insert: one position computation and one bit write per batch.

        The ``n × k`` positions are computed in a single
        :meth:`~repro.bloom.hashing.HashFamily.indices_batch` call and the bits
        set in one backend operation; the weight map is updated over the
        deduplicated position set (many items share bits, so this does far fewer
        dict operations than per-item insertion).
        """
        try:
            hash(weight)
        except TypeError as error:
            raise TypeError(
                f"weight must be hashable, got {type(weight).__name__}"
            ) from error
        items = list(items)
        if not items:
            return
        rows = self._hashes.indices_batch(items)
        flat = [position for row in rows for position in row]
        self._bits.set_many(flat)
        weights = self._weights
        for position in set(flat):
            attached = weights.get(position)
            if attached is None:
                weights[position] = {weight}
            elif type(attached) is frozenset:
                mutable = set(attached)
                mutable.add(weight)
                weights[position] = mutable
            else:
                attached.add(weight)
        self._item_count += len(items)
        self._revision += 1

    # -- queries -----------------------------------------------------------------

    def contains(self, item: object) -> bool:
        """Plain membership query, ignoring weights (no false negatives)."""
        return all(self._bits.get(position) for position in self._hashes.positions(item))

    def contains_many(self, items: Sequence[object]) -> list[bool]:
        """Batched membership probe: one verdict per item, in order."""
        return self._bits.all_set_rows(self._hashes.indices_batch(items))

    def __contains__(self, item: object) -> bool:
        return self.contains(item)

    def query_weights(self, item: object) -> frozenset:
        """Return the weights consistent with every bit of ``item``.

        The result is the intersection of the weight sets attached to the ``k`` bit
        positions of ``item``; it is empty when any bit is 0 **or** when the bits are
        set but were set by values of differing weights (Algorithm 2's rejection
        condition).
        """
        return self.query_weights_at(self._hashes.positions(item))

    def query_weights_at(
        self, positions: Iterable[int], *, bits_checked: bool = False
    ) -> frozenset:
        """Same as :meth:`query_weights` but for precomputed bit positions.

        Base stations probing one filter with many candidate patterns precompute the
        positions once per candidate (they depend only on ``m``, ``k`` and the seed)
        and reuse them; this method is the fast path for that case.  Callers that
        already verified all bits through a vectorized
        :meth:`bits_all_set_rows` pre-check pass ``bits_checked=True`` to skip the
        per-position scalar re-probe (a bit with an attached weight is set by
        construction, so the intersection alone is sufficient then).
        """
        common: set[Hashable] | None = None
        weights = self._weights
        empty: frozenset = frozenset()
        for position in positions:
            if bits_checked:
                attached = weights.get(position)
                if attached is None:
                    return empty
            else:
                if not self._bits.get(position):
                    return empty
                attached = weights.get(position, set())
            common = set(attached) if common is None else (common & attached)
            if not common:
                return empty
        return frozenset(common if common is not None else ())

    def query_many(self, items: Sequence[object]) -> list[frozenset]:
        """Batched weighted query: one weight set per item, in order.

        The bit-membership test for all ``n × k`` positions runs as a single
        vectorized backend row-test; the (sparse, Python-side) weight
        intersection runs only for the items whose bits all passed.
        """
        items = list(items)
        rows = self._hashes.indices_batch(items)
        return self.query_many_at(rows)

    def bits_all_set_rows(self, rows: Sequence[Sequence[int]]) -> list[bool]:
        """For each row of bit positions, True iff every bit is set.

        The vectorized pre-check used by the batched station matcher: most
        candidates fail on bits, and this rejects them all in one backend call
        without touching the weight map.
        """
        return self._bits.all_set_rows(rows)

    def query_many_at(self, rows: Sequence[Sequence[int]]) -> list[frozenset]:
        """Same as :meth:`query_many` but for precomputed position rows."""
        passed = self._bits.all_set_rows(rows)
        results: list[frozenset] = []
        weights = self._weights
        empty = frozenset()
        for row, bits_ok in zip(rows, passed):
            if not bits_ok:
                results.append(empty)
                continue
            common: set[Hashable] | None = None
            for position in row:
                attached = weights.get(position, set())
                common = set(attached) if common is None else (common & attached)
                if not common:
                    break
            results.append(frozenset(common) if common else empty)
        return results

    # -- batched consistency probe (mask index) ------------------------------------

    #: Class-level switch for the integer-mask probe index.  Benchmarks flip it
    #: off to measure the per-row set-intersection path; results are identical
    #: either way (see :meth:`consistent_weights_over`).
    MASK_INDEX_ENABLED = True

    def _weight_mask_index(
        self,
    ) -> tuple[int, tuple, dict[int, int], dict[int, frozenset]]:
        """Lazily built probe index: each position's weight set as an int bitmask.

        Distinct weights get consecutive bit numbers; a position's mask has the
        bits of its attached weights set.  Intersecting weight sets across many
        positions then collapses to integer ``&``.  The index is keyed on
        :attr:`revision` so any insertion invalidates it, and the final
        ``mask -> frozenset`` memo interns result sets so repeated matches of
        the same weight combination return one shared object.
        """
        index = self._mask_index
        if index is not None and index[0] == self._revision:
            return index
        weight_bits: dict[Hashable, int] = {}
        weight_list: list[Hashable] = []
        masks: dict[int, int] = {}
        for position, attached in self._weights.items():
            mask = 0
            for weight in attached:
                bit = weight_bits.get(weight)
                if bit is None:
                    bit = len(weight_list)
                    weight_bits[weight] = bit
                    weight_list.append(weight)
                mask |= 1 << bit
            masks[position] = mask
        index = (self._revision, tuple(weight_list), masks, {0: frozenset()})
        self._mask_index = index
        return index

    def consistent_weights_over(self, positions: Iterable[int]) -> frozenset:
        """Weights attached at **every** one of ``positions`` (bits assumed set).

        Equivalent to intersecting :meth:`query_weights_at` (with
        ``bits_checked=True``) over all the positions at once: a position with
        no attached weights, or an empty cross-position intersection, yields
        the empty frozenset.  An empty ``positions`` iterable also yields the
        empty frozenset — matching the matcher's "no rows → no match" rule.
        The caller must have verified bit membership (e.g. via
        :meth:`bits_all_set_rows`) first.
        """
        revision, weight_list, masks, memo = self._weight_mask_index()
        empty: frozenset = frozenset()
        acc = -1
        get = masks.get
        for position in positions:
            mask = get(position)
            if mask is None:
                return empty
            acc &= mask
            if not acc:
                return empty
        if acc == -1:
            return empty
        result = memo.get(acc)
        if result is None:
            members = []
            remaining = acc
            while remaining:
                low = remaining & -remaining
                members.append(weight_list[low.bit_length() - 1])
                remaining ^= low
            result = frozenset(members)
            memo[acc] = result
        return result

    # -- pickling ------------------------------------------------------------------

    def __getstate__(self) -> dict:
        """Drop the derived mask index: it is bulky and rebuilt on demand."""
        state = dict(self.__dict__)
        state["_mask_index"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)

    # -- introspection -------------------------------------------------------------

    def fill_ratio(self) -> float:
        """Fraction of bits currently set."""
        return self._bits.count() / len(self._bits)

    def estimated_false_positive_rate(self) -> float:
        """False-positive probability of the underlying (unweighted) membership test."""
        return expected_false_positive_rate(
            bit_count=self.bit_count,
            hash_count=self.hash_count,
            item_count=self._item_count,
        )

    def distinct_weights(self) -> set:
        """All distinct weights stored anywhere in the filter."""
        result: set[Hashable] = set()
        for attached in self._weights.values():
            result |= attached
        return result

    def size_bytes(self) -> int:
        """Estimate-model serialized size of the WBF.

        Models the bit array, a table of the distinct weights (8 bytes each —
        weights are repeated across many bits, so they are stored once), and a
        2-byte table index per (set bit, weight) pointer.  This is what makes the WBF
        marginally larger than a plain Bloom filter of the same length — the storage
        trade-off discussed with Figure 4(d).  The *real* encoded size charged by
        the simulator comes from ``repro.wire`` (same structure: canonical bits, a
        sorted weight table, per-set-bit index lists); the test suite holds this
        estimate within a documented factor of it.
        """
        weight_pointer_bytes = 2
        pointer_entries = sum(len(attached) for attached in self._weights.values())
        distinct = len(self.distinct_weights())
        return (
            self._bits.size_bytes()
            + distinct * FLOAT_BYTES
            + pointer_entries * weight_pointer_bytes
        )

    def __repr__(self) -> str:
        return (
            f"WeightedBloomFilter(m={self.bit_count}, k={self.hash_count}, "
            f"items={self._item_count}, fill={self.fill_ratio():.3f}, "
            f"weights={len(self.distinct_weights())})"
        )
