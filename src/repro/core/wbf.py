"""Weighted Bloom Filter (WBF) — the paper's novel data structure.

A WBF is a Bloom filter in which every set bit additionally carries the weights of
the values hashed onto it ("each bit with 1 ... has a pointer pointing to the weight
of corresponding hashed values", Section II-B).  Insertion attaches the inserted
value's weight to each of its ``k`` bits; a *weighted query* returns the set of
weights consistent with **all** ``k`` bits of the probed value — empty if any bit is
0, or if the bits are 1 but share no common weight (which is how the WBF suppresses
the cross-pattern false positives a plain Bloom filter accepts).

The structure is agnostic to the weight type: any hashable value can be attached.
DI-matching uses exact :class:`fractions.Fraction` weights qualified by the query
they belong to (``(query_id, Fraction)`` tuples) so that the aggregation rule of
Algorithm 3 ("delete IDs whose weight sum exceeds 1") can test equality without
floating-point tolerance and without mixing weights across unrelated query patterns.
"""

from __future__ import annotations

from typing import Hashable, Iterable

from repro.bloom.analysis import expected_false_positive_rate
from repro.bloom.bitset import BitArray
from repro.bloom.hashing import HashFamily
from repro.utils.serialization import FLOAT_BYTES
from repro.utils.validation import require_positive


class WeightedBloomFilter:
    """Bloom filter whose set bits carry the weights of the values that set them."""

    def __init__(self, bit_count: int, hash_count: int, seed: int = 0) -> None:
        require_positive(bit_count, "bit_count")
        require_positive(hash_count, "hash_count")
        self._bits = BitArray(bit_count)
        self._hashes = HashFamily(hash_count, bit_count, seed=seed)
        # Sparse map: bit index -> set of weights attached to that bit.
        self._weights: dict[int, set[Hashable]] = {}
        self._item_count = 0

    # -- properties ------------------------------------------------------------

    @property
    def bit_count(self) -> int:
        """Filter length ``m`` in bits."""
        return len(self._bits)

    @property
    def hash_count(self) -> int:
        """Number of hash functions ``k``."""
        return self._hashes.hash_count

    @property
    def seed(self) -> int:
        """Seed of the hash family (shared between center and stations)."""
        return self._hashes.seed

    @property
    def item_count(self) -> int:
        """Number of (value, weight) insertions performed."""
        return self._item_count

    @property
    def hash_family(self) -> HashFamily:
        """The hash family used by this filter."""
        return self._hashes

    # -- insertion ---------------------------------------------------------------

    def add(self, item: object, weight: Hashable) -> None:
        """Insert ``item`` and attach ``weight`` to each of its bits."""
        try:
            hash(weight)
        except TypeError as error:
            raise TypeError(
                f"weight must be hashable, got {type(weight).__name__}"
            ) from error
        for position in self._hashes.positions(item):
            self._bits.set(position)
            self._weights.setdefault(position, set()).add(weight)
        self._item_count += 1

    def add_many(self, items: Iterable[object], weight: Hashable) -> None:
        """Insert every item of ``items`` with the same ``weight``."""
        for item in items:
            self.add(item, weight)

    # -- queries -----------------------------------------------------------------

    def contains(self, item: object) -> bool:
        """Plain membership query, ignoring weights (no false negatives)."""
        return all(self._bits.get(position) for position in self._hashes.positions(item))

    def __contains__(self, item: object) -> bool:
        return self.contains(item)

    def query_weights(self, item: object) -> frozenset:
        """Return the weights consistent with every bit of ``item``.

        The result is the intersection of the weight sets attached to the ``k`` bit
        positions of ``item``; it is empty when any bit is 0 **or** when the bits are
        set but were set by values of differing weights (Algorithm 2's rejection
        condition).
        """
        return self.query_weights_at(self._hashes.positions(item))

    def query_weights_at(self, positions: Iterable[int]) -> frozenset:
        """Same as :meth:`query_weights` but for precomputed bit positions.

        Base stations probing one filter with many candidate patterns precompute the
        positions once per candidate (they depend only on ``m``, ``k`` and the seed)
        and reuse them; this method is the fast path for that case.
        """
        common: set[Hashable] | None = None
        for position in positions:
            if not self._bits.get(position):
                return frozenset()
            attached = self._weights.get(position, set())
            common = set(attached) if common is None else (common & attached)
            if not common:
                return frozenset()
        return frozenset(common if common is not None else ())

    # -- introspection -------------------------------------------------------------

    def fill_ratio(self) -> float:
        """Fraction of bits currently set."""
        return self._bits.count() / len(self._bits)

    def estimated_false_positive_rate(self) -> float:
        """False-positive probability of the underlying (unweighted) membership test."""
        return expected_false_positive_rate(
            bit_count=self.bit_count,
            hash_count=self.hash_count,
            item_count=self._item_count,
        )

    def distinct_weights(self) -> set:
        """All distinct weights stored anywhere in the filter."""
        result: set[Hashable] = set()
        for attached in self._weights.values():
            result |= attached
        return result

    def size_bytes(self) -> int:
        """Serialized size charged when the WBF is distributed to base stations.

        The wire format is the bit array, a table of the distinct weights (8 bytes
        each — weights are repeated across many bits, so they are stored once), and a
        2-byte table index per (set bit, weight) pointer.  This is what makes the WBF
        marginally larger than a plain Bloom filter of the same length — the storage
        trade-off discussed with Figure 4(d).
        """
        weight_pointer_bytes = 2
        pointer_entries = sum(len(attached) for attached in self._weights.values())
        distinct = len(self.distinct_weights())
        return (
            self._bits.size_bytes()
            + distinct * FLOAT_BYTES
            + pointer_entries * weight_pointer_bytes
        )

    def __repr__(self) -> str:
        return (
            f"WeightedBloomFilter(m={self.bit_count}, k={self.hash_count}, "
            f"items={self._item_count}, fill={self.fill_ratio():.3f}, "
            f"weights={len(self.distinct_weights())})"
        )
