"""The DI-matching protocol: the paper's end-to-end framework.

Ties Algorithm 1 (encoding), Algorithm 2 (station matching) and Algorithm 3
(aggregation) together behind the :class:`~repro.core.protocol.MatchingProtocol`
interface so it can be driven by the distributed simulator and compared against the
baselines under identical conditions.
"""

from __future__ import annotations

from fractions import Fraction
from typing import TYPE_CHECKING, Sequence

from repro.core.aggregator import SimilarityRanker
from repro.core.config import DIMatchingConfig
from repro.core.encoder import EncodedQueryBatch, PatternEncoder
from repro.core.exceptions import MatchingError
from repro.core.matcher import StationMatcherCache
from repro.core.protocol import MatchingProtocol, MatchReport, RankedResults
from repro.timeseries.pattern import PatternSet
from repro.timeseries.query import QueryPattern

if TYPE_CHECKING:  # pragma: no cover - import for type checking only
    from repro.datagen.workload import DistributedDataset


class DIMatchingProtocol(MatchingProtocol):
    """Weighted-Bloom-Filter based distributed incomplete pattern matching."""

    def __init__(
        self,
        config: DIMatchingConfig | None = None,
        max_weight_sum: Fraction = Fraction(1),
    ) -> None:
        self._config = config or DIMatchingConfig()
        self._encoder = PatternEncoder(self._config)
        self._ranker = SimilarityRanker(max_weight_sum)
        self._matchers = StationMatcherCache(self._config)

    @property
    def name(self) -> str:
        """Protocol name used in evaluation reports."""
        return "wbf"

    @property
    def config(self) -> DIMatchingConfig:
        """The shared center/station configuration."""
        return self._config

    # -- MatchingProtocol interface ---------------------------------------------

    def encode(self, queries: Sequence[QueryPattern]) -> EncodedQueryBatch:
        """Algorithm 1 at the data center."""
        return self._encoder.encode_batch(queries)

    def station_match(
        self, station_id: str, patterns: PatternSet, artifact: object | None
    ) -> list[MatchReport]:
        """Algorithm 2 at one base station."""
        if not isinstance(artifact, EncodedQueryBatch):
            raise MatchingError(
                f"station {station_id!r} received {type(artifact).__name__}, "
                "expected an EncodedQueryBatch"
            )
        return self._matchers.matcher_for(station_id, patterns).match_against(artifact)

    def aggregate(self, reports: Sequence[object], k: int | None) -> RankedResults:
        """Algorithm 3 at the data center."""
        typed_reports = [r for r in reports if isinstance(r, MatchReport)]
        if len(typed_reports) != len(reports):
            raise MatchingError("DI-matching aggregation received non-MatchReport entries")
        return self._ranker.aggregate(typed_reports, k)


def run_dimatching(
    dataset: "DistributedDataset",
    queries: Sequence[QueryPattern],
    config: DIMatchingConfig | None = None,
    k: int | None = None,
) -> RankedResults:
    """Convenience entry point: run DI-matching over a dataset without the simulator.

    Iterates the stations sequentially in-process; use
    :class:`repro.distributed.simulator.DistributedSimulation` when communication,
    storage and timing costs are needed.
    """
    protocol = DIMatchingProtocol(config)
    artifact = protocol.encode(queries)
    reports: list[MatchReport] = []
    for station_id in dataset.station_ids:
        patterns = dataset.local_patterns_at(station_id)
        if len(patterns) == 0:
            continue
        reports.extend(protocol.station_match(station_id, patterns, artifact))
    return protocol.aggregate(reports, k)
