"""Hierarchy benchmark: center-ingress bytes, flat star vs two-tier, at 10k stations.

The regional tier exists to shrink one quantity: the bytes that terminate at
the data center's uplink ingress.  In the flat star every station report
crosses that ingress; behind a two-tier topology each regional aggregator
unions its stations' ``MATCH_REPORT``s into one deduplicated, re-encoded
summary, so the trunk carries one frame per region instead of one per
station.  This benchmark drives the *same* WBF round over the 100x-scale
directly-constructed city (:mod:`repro.datagen.scale`, 10,000 stations)
through both layouts and persists ``BENCH_hierarchy.json``:

* the rankings must be identical — the hierarchy is a routing change, never a
  results change (asserted element-for-element, then pinned by digest);
* ``ingress.ratio`` (flat ingress / two-tier ingress, > 1) is the headline
  metric the perf-trajectory gate tracks, alongside both absolute byte
  counts.

Everything recorded is deterministic under the seed; wall-clock timings are
informational only and never gated.

Run with:  PYTHONPATH=src python -m pytest benchmarks/bench_hierarchy.py
"""

import hashlib

from conftest import write_json_result, write_report

from repro.cluster import Cluster, ClusterSpec, ProtocolSpec
from repro.core.config import DIMatchingConfig
from repro.datagen.scale import build_scale_dataset, build_scale_queries
from repro.topology import TopologySpec

STATION_COUNT = 10_000
#: 100 stations behind each aggregator — the trunk fan-in drops 100x.
REGION_COUNT = 100
QUERY_COUNT = 16
SEED = 2013


def _spec(topology: "TopologySpec | None") -> ClusterSpec:
    return ClusterSpec(
        name="hierarchy-bench",
        protocol=ProtocolSpec(
            method="wbf",
            config=DIMatchingConfig(epsilon=0, sample_count=8, hash_count=4),
        ),
        topology=topology,
    )


def _run_round(dataset, queries, topology):
    with Cluster(_spec(topology), dataset=dataset) as cluster:
        cluster.subscribe(queries)
        return cluster.round(k=None)


def _ranking(report) -> list[tuple[str, float]]:
    return [(entry.user_id, entry.score) for entry in report.results]


def _ranked_digest(report) -> str:
    lines = "\n".join(f"{user_id}:{score!r}" for user_id, score in _ranking(report))
    return hashlib.sha256(lines.encode("utf-8")).hexdigest()


def test_two_tier_cuts_center_ingress_at_10k_stations(benchmark):
    dataset = build_scale_dataset(
        station_count=STATION_COUNT, users_per_station=1, seed=SEED
    )
    queries = build_scale_queries(dataset, QUERY_COUNT, seed=SEED)
    two_tier = TopologySpec(kind="two-tier", regions=REGION_COUNT)

    flat = _run_round(dataset, queries, None)
    tiered = benchmark.pedantic(
        lambda: _run_round(dataset, queries, two_tier), rounds=1, iterations=1
    )

    # Routing change, not a results change: rankings match element for element.
    assert _ranking(tiered) == _ranking(flat)

    # The flat star has no tier ledger; the two-tier round charges the trunk
    # hop plus one regional hop per aggregator, all in tier-map order.
    assert flat.costs.tiers == ()
    assert [tier.tier for tier in tiered.costs.tiers] == ["trunk"] + [
        f"region-{index}" for index in range(REGION_COUNT)
    ]

    flat_ingress = flat.costs.center_ingress_bytes
    tiered_ingress = tiered.costs.center_ingress_bytes
    assert flat_ingress == flat.costs.uplink_bytes
    assert tiered_ingress < flat_ingress
    ratio = flat_ingress / tiered_ingress

    # Deterministic under the seed: a fresh deployment replays the same round.
    assert _ranked_digest(_run_round(dataset, queries, two_tier)) == _ranked_digest(
        tiered
    )

    trunk = tiered.costs.tiers[0]
    payload = {
        "station_count": STATION_COUNT,
        "region_count": REGION_COUNT,
        "query_count": QUERY_COUNT,
        "ingress": {
            "flat_bytes": flat_ingress,
            "two_tier_bytes": tiered_ingress,
            "ratio": round(ratio, 4),
        },
        "trunk": {
            "uplink_bytes": trunk.uplink_bytes,
            "message_count": trunk.message_count,
            "wire_version": trunk.wire_version,
        },
        "regional_uplink_bytes": sum(
            tier.uplink_bytes for tier in tiered.costs.tiers[1:]
        ),
        "ranked_count": len(tiered.results),
        "ranked_digest": _ranked_digest(tiered),
    }
    write_json_result("hierarchy", payload)
    write_report(
        "hierarchy",
        "Center ingress, flat star vs two-tier, one WBF round over "
        f"{STATION_COUNT} stations / {REGION_COUNT} regions\n"
        f"  flat ingress={flat_ingress}B  two-tier ingress={tiered_ingress}B "
        f"(ratio {ratio:.2f}x)\n"
        f"  trunk messages={trunk.message_count} "
        f"regional uplink={payload['regional_uplink_bytes']}B",
    )
