"""Ablation: the weight rules of the WBF (DESIGN.md §5).

Two rules distinguish the WBF from a plain Bloom filter:

1. the *weight-agreement* rule at base stations (all sampled points of a candidate
   must share one weight), and
2. the *weight-sum* rule at the data center (per-query sums above 1 are deleted).

This bench measures precision with (a) the full WBF, (b) the WBF without the
weight-sum rule (the over-matching bound lifted), and (c) the plain BF (no weights at
all) on a decoy-heavy workload, showing that each rule contributes.
"""

from fractions import Fraction

from conftest import write_report

from repro.baselines.bf_matching import BloomFilterProtocol
from repro.core.config import DIMatchingConfig
from repro.core.dimatching import DIMatchingProtocol
from repro.datagen.workload import DatasetSpec, build_dataset, build_query_workload
from repro.cluster import Cluster
from repro.evaluation.experiments import ground_truth_users
from repro.evaluation.metrics import evaluate_retrieval
from repro.utils.asciiplot import render_table


def _environment():
    dataset = build_dataset(
        DatasetSpec(
            users_per_category=30,
            station_count=6,
            noise_level=0,
            cliques_per_place=2,
            replicated_decoys_per_category=8,
            seed=71,
        )
    )
    workload = build_query_workload(dataset, 12, epsilon=0, seed=71)
    return dataset, workload


def test_ablation_weight_rules(benchmark):
    dataset, workload = _environment()
    config = DIMatchingConfig(epsilon=0, sample_count=12)
    queries = list(workload.queries)
    truth = ground_truth_users(dataset, queries, 0)
    cluster = Cluster.adopt(dataset)

    variants = {
        "wbf (full)": DIMatchingProtocol(config),
        "wbf (no weight-sum rule)": DIMatchingProtocol(
            config, max_weight_sum=Fraction(10**6)
        ),
        "bf (no weights)": BloomFilterProtocol(config),
    }

    def run_all():
        precisions = {}
        for label, protocol in variants.items():
            outcome = cluster.drive(protocol, queries, k=len(truth))
            precisions[label] = evaluate_retrieval(
                outcome.retrieved_user_ids, truth
            ).precision
        return precisions

    precisions = benchmark.pedantic(run_all, rounds=1, iterations=1)
    write_report(
        "ablation_weight_rule",
        render_table(["variant", "precision"], [[k, v] for k, v in precisions.items()]),
    )

    # Each rule contributes: removing the weight-sum rule hurts, removing weights
    # entirely hurts at least as much.
    assert precisions["wbf (full)"] > precisions["wbf (no weight-sum rule)"]
    assert precisions["wbf (full)"] > precisions["bf (no weights)"]
    assert precisions["wbf (no weight-sum rule)"] >= precisions["bf (no weights)"]
