"""Workload scenario benchmarks: the system under declared traffic shapes.

Runs every registered scenario at its catalog size and persists one
``BENCH_workload_<scenario>.json`` per scenario — per-round and cumulative
bytes/latency/goodput/precision — plus a cross-scenario summary table.  These
files are the perf-trajectory gate's inputs for the workload layer: CI reruns
this module and compares the fresh JSON against ``benchmarks/baselines/``
(see ``repro.evaluation.trajectory``).  All tracked quantities are
deterministic functions of ``(scenario, seed)``; only the pytest-benchmark
timing of the steady-state drive measures the machine.

Run with:  PYTHONPATH=src python -m pytest benchmarks/bench_workloads.py
"""

import pytest
from conftest import write_json_result, write_report

from repro.evaluation.benchjson import workload_payload
from repro.utils.asciiplot import render_table
from repro.workloads import SCENARIOS, get_scenario, run_workload, scenario_names


@pytest.fixture(scope="session")
def scenario_results():
    """Every catalog scenario run once at its declared size."""
    return {name: run_workload(get_scenario(name)) for name in scenario_names()}


def test_workload_engine_throughput(benchmark):
    """Timing unit: one full steady-state drive at catalog size."""
    result = benchmark.pedantic(
        lambda: run_workload(get_scenario("steady-state")), rounds=1, iterations=1
    )
    assert result.round_count == SCENARIOS["steady-state"].rounds


def test_scenario_catalog_trajectory(scenario_results):
    """Persist every scenario's numbers and pin the catalog's shape claims."""
    rows = []
    for name, result in scenario_results.items():
        write_json_result(
            f"workload_{name.replace('-', '_')}", workload_payload(result)
        )
        stats = result.cumulative
        rows.append(
            [
                name,
                result.round_count,
                result.total_queries,
                result.total_bytes,
                round(stats["latency_s"].p90, 4),
                round(stats["precision"].mean, 4),
                round(stats["goodput"].minimum, 4),
            ]
        )
    report = render_table(
        ["scenario", "rounds", "queries", "bytes", "latency p90", "precision", "goodput min"],
        rows,
    )
    write_report("workload_scenarios", report)

    results = scenario_results
    # Flash crowds actually spike the per-round traffic ...
    flash = results["flash-crowd"].cumulative["bytes"]
    assert flash.maximum > 2 * flash.p50
    # ... churn actually moves stations ...
    assert any(
        metrics.joined or metrics.left for metrics in results["churn-heavy"].rounds
    )
    # ... chaos costs retransmissions but never answers ...
    degraded = results["degraded-network"]
    assert sum(m.retransmit_count for m in degraded.rounds) > 0
    assert degraded.cumulative["goodput"].minimum < 1.0
    # ... and the clean steady state stays sharp (the residual gap is the
    # WBF's decoy false positives, tracked exactly by the trajectory gate)
    # at unit goodput.
    steady = results["steady-state"].cumulative
    assert steady["precision"].mean > 0.85
    assert steady["goodput"].minimum == 1.0


def test_session_drive_delta_advantage(benchmark):
    """The long-session scenario's incremental drive ships far fewer bytes."""
    spec = get_scenario("long-session")
    session = benchmark.pedantic(
        lambda: run_workload(spec, drive="session"), rounds=1, iterations=1
    )
    simulation = run_workload(spec, drive="simulation")
    assert session.total_bytes < simulation.total_bytes
    payload = workload_payload(session)
    payload["simulation_drive_bytes"] = simulation.total_bytes
    write_json_result("workload_long_session_deltas", payload)
