"""Ablation: the accumulation transform (Eq. 3) versus hashing raw interval values.

The paper argues the accumulated form is what lets the filter distinguish time series
with the same multiset of values (e.g. {1,2,3} vs {3,2,1}).  This bench disables the
transform and measures how many reordered decoy patterns are falsely accepted by the
base-station matcher with and without accumulation.
"""

from conftest import write_report

from repro.core.config import DIMatchingConfig
from repro.core.encoder import PatternEncoder
from repro.core.matcher import BaseStationMatcher
from repro.timeseries.pattern import LocalPattern, PatternSet
from repro.timeseries.query import QueryPattern
from repro.utils.asciiplot import render_table
from repro.utils.rng import make_rng


def _build_queries_and_decoys(count=40, length=12, seed=5):
    """Queries with distinctive orderings plus reordered (reversed) decoys."""
    rng = make_rng(seed)
    queries, decoys = [], []
    for index in range(count):
        values = [int(v) for v in rng.integers(0, 9, size=length)]
        values[0] += 1  # guarantee a non-zero pattern
        if values == values[::-1]:
            values[-1] += 1  # avoid palindromes, which reorder to themselves
        queries.append(
            QueryPattern(f"q{index}", [LocalPattern(f"user-{index}", values, "bs-0")])
        )
        decoys.append(LocalPattern(f"decoy-{index}", values[::-1], "bs-9"))
    return queries, decoys


def _false_accepts(config, queries, decoys):
    encoder = PatternEncoder(config)
    encoded = encoder.encode_batch(queries)
    matcher = BaseStationMatcher(config, "bs-9", PatternSet(decoys))
    reports = matcher.match_against(encoded)
    return len({report.user_id for report in reports})


def test_ablation_accumulation_transform(benchmark):
    # The paper's argument concerns hashing *values*: a Bloom filter "may consider
    # {1,2,3} and {3,2,1} as the same pattern because the values are the same".  The
    # ablation therefore hashes bare values (include_sample_index=False) and samples
    # every interval, isolating exactly the contribution of the accumulation step.
    queries, decoys = _build_queries_and_decoys()
    with_accumulation = DIMatchingConfig(
        epsilon=0, sample_count=12, include_sample_index=False, use_accumulation=True
    )
    without_accumulation = DIMatchingConfig(
        epsilon=0, sample_count=12, include_sample_index=False, use_accumulation=False
    )

    def run_both():
        return {
            "accumulated (Eq. 3)": _false_accepts(with_accumulation, queries, decoys),
            "raw values": _false_accepts(without_accumulation, queries, decoys),
        }

    false_accepts = benchmark.pedantic(run_both, rounds=1, iterations=1)
    write_report(
        "ablation_accumulation",
        render_table(
            ["encoding", "reordered decoys falsely accepted (of 40)"],
            [[k, v] for k, v in false_accepts.items()],
        ),
    )

    # Hashing raw values cannot tell a pattern from its reversal (same value
    # multiset): every reordered decoy is falsely accepted.  The accumulated form
    # separates them almost perfectly.
    assert false_accepts["raw values"] >= 35
    assert false_accepts["accumulated (Eq. 3)"] <= 5
    assert false_accepts["accumulated (Eq. 3)"] < false_accepts["raw values"]
