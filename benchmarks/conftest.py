"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure of the paper (see DESIGN.md §4).
The heavyweight inputs — the Figure-4 dataset and its query-count sweep — are built
once per session and shared; the rendered reports are written to
``benchmarks/results/`` so they survive the run and can be pasted into
EXPERIMENTS.md.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.core.config import DIMatchingConfig  # noqa: E402
from repro.datagen.workload import DatasetSpec, build_dataset, build_query_workload  # noqa: E402
from repro.evaluation.benchjson import write_bench_json  # noqa: E402
from repro.evaluation.experiments import sweep_query_counts  # noqa: E402

RESULTS_DIR = Path(__file__).resolve().parent / "results"

#: Query-count sweep used for every Figure-4 panel.  Each query contributes a handful
#: of combined patterns, so these counts correspond to roughly 40–340 represented
#: patterns (the paper sweeps 100–500 on its much larger dataset).
FIGURE4_QUERY_COUNTS = (6, 12, 24, 36, 48)


def write_report(name: str, content: str) -> Path:
    """Persist a rendered table/figure under ``benchmarks/results/`` and return its path."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(content + "\n", encoding="utf-8")
    return path


def write_json_result(name: str, payload: dict) -> Path:
    """Persist machine-readable numbers as ``benchmarks/results/BENCH_<name>.json``."""
    return write_bench_json(RESULTS_DIR, name, payload)


@pytest.fixture(scope="session")
def figure4_config() -> DIMatchingConfig:
    """Exact-matching configuration shared by the Figure-4 panels."""
    return DIMatchingConfig(epsilon=0, sample_count=12, hash_count=4)


@pytest.fixture(scope="session")
def figure4_dataset():
    """The synthetic city used for the accuracy/efficiency comparison (Figure 4)."""
    return build_dataset(
        DatasetSpec(
            users_per_category=120,
            station_count=6,
            days=2,
            intervals_per_day=48,
            noise_level=0,
            cliques_per_place=3,
            replicated_decoys_per_category=3,
            seed=2012,
        )
    )


@pytest.fixture(scope="session")
def figure4_largest_workload(figure4_dataset):
    """The largest query batch of the sweep, used as the benchmark timing unit."""
    return build_query_workload(
        figure4_dataset, FIGURE4_QUERY_COUNTS[-1], epsilon=0, seed=2012
    )


@pytest.fixture(scope="session")
def figure4_sweep(figure4_dataset, figure4_config):
    """The full Naive / BF / WBF sweep over increasing pattern counts (Figure 4 a-d)."""
    return sweep_query_counts(
        figure4_dataset,
        list(FIGURE4_QUERY_COUNTS),
        epsilon=0,
        config=figure4_config,
        methods=("naive", "bf", "wbf"),
        seed=2012,
    )
