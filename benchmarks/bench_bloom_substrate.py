"""Microbenchmarks of the Bloom-filter substrate.

Not tied to a specific paper figure; provides throughput baselines for the data
structures everything else is built on (insertions and membership probes for the
classic Bloom filter and the Weighted Bloom Filter).
"""

from fractions import Fraction

from repro.bloom.standard import BloomFilter
from repro.core.wbf import WeightedBloomFilter

ITEM_COUNT = 2000


def test_bloom_filter_insert_throughput(benchmark):
    def insert_items():
        bloom = BloomFilter(bit_count=ITEM_COUNT * 10, hash_count=4)
        bloom.add_many(range(ITEM_COUNT))
        return bloom

    bloom = benchmark(insert_items)
    assert bloom.item_count == ITEM_COUNT


def test_bloom_filter_query_throughput(benchmark):
    bloom = BloomFilter(bit_count=ITEM_COUNT * 10, hash_count=4)
    bloom.add_many(range(ITEM_COUNT))

    def probe_items():
        return sum(1 for value in range(ITEM_COUNT) if value in bloom)

    hits = benchmark(probe_items)
    assert hits == ITEM_COUNT


def test_weighted_bloom_filter_insert_throughput(benchmark):
    weight = Fraction(1, 3)

    def insert_items():
        wbf = WeightedBloomFilter(bit_count=ITEM_COUNT * 12, hash_count=4)
        wbf.add_many(range(ITEM_COUNT), weight)
        return wbf

    wbf = benchmark(insert_items)
    assert wbf.item_count == ITEM_COUNT


def test_weighted_bloom_filter_weighted_query_throughput(benchmark):
    weight = Fraction(1, 3)
    wbf = WeightedBloomFilter(bit_count=ITEM_COUNT * 12, hash_count=4)
    wbf.add_many(range(ITEM_COUNT), weight)

    def probe_items():
        return sum(1 for value in range(ITEM_COUNT) if weight in wbf.query_weights(value))

    hits = benchmark(probe_items)
    assert hits == ITEM_COUNT
