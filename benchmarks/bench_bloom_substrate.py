"""Microbenchmarks of the Bloom-filter substrate.

Not tied to a specific paper figure; provides throughput baselines for the data
structures everything else is built on.  Every benchmark is parametrized over
the available bit backends ("python" always; "numpy" when NumPy is installed)
and exercises the batched insertion/probe paths the encoder and station
matcher use, so backend regressions show up here first.

Run with:  PYTHONPATH=src python -m pytest benchmarks/bench_bloom_substrate.py
"""

from fractions import Fraction

import pytest

from repro.bloom.backend import available_backends
from repro.bloom.standard import BloomFilter
from repro.core.wbf import WeightedBloomFilter

ITEM_COUNT = 2000

BACKENDS = available_backends()


@pytest.fixture(params=BACKENDS)
def backend(request):
    return request.param


def test_bloom_filter_insert_throughput(benchmark, backend):
    def insert_items():
        bloom = BloomFilter(bit_count=ITEM_COUNT * 10, hash_count=4, backend=backend)
        bloom.add_many(range(ITEM_COUNT))
        return bloom

    bloom = benchmark(insert_items)
    assert bloom.item_count == ITEM_COUNT
    assert bloom.backend_name == backend


def test_bloom_filter_query_throughput(benchmark, backend):
    bloom = BloomFilter(bit_count=ITEM_COUNT * 10, hash_count=4, backend=backend)
    bloom.add_many(range(ITEM_COUNT))

    def probe_items():
        return sum(bloom.contains_many(range(ITEM_COUNT)))

    hits = benchmark(probe_items)
    assert hits == ITEM_COUNT


def test_weighted_bloom_filter_insert_throughput(benchmark, backend):
    weight = Fraction(1, 3)

    def insert_items():
        wbf = WeightedBloomFilter(bit_count=ITEM_COUNT * 12, hash_count=4, backend=backend)
        wbf.insert_many(range(ITEM_COUNT), weight)
        return wbf

    wbf = benchmark(insert_items)
    assert wbf.item_count == ITEM_COUNT
    assert wbf.backend_name == backend


def test_bit_array_union_and_popcount_throughput(benchmark, backend):
    """Pure bit-substrate ops (no hashing): where word-wise vectorization pays most."""
    from repro.bloom.bitset import BitArray

    bits_a = BitArray.from_indices(
        ITEM_COUNT * 64, range(0, ITEM_COUNT * 64, 3), backend=backend
    )
    bits_b = BitArray.from_indices(
        ITEM_COUNT * 64, range(1, ITEM_COUNT * 64, 5), backend=backend
    )

    def union_count():
        return (bits_a | bits_b).count()

    set_bits = benchmark(union_count)
    assert set_bits == sum(1 for i in range(ITEM_COUNT * 64) if i % 3 == 0 or i % 5 == 1)


def test_weighted_bloom_filter_weighted_query_throughput(benchmark, backend):
    weight = Fraction(1, 3)
    wbf = WeightedBloomFilter(bit_count=ITEM_COUNT * 12, hash_count=4, backend=backend)
    wbf.insert_many(range(ITEM_COUNT), weight)

    def probe_items():
        return sum(1 for weights in wbf.query_many(range(ITEM_COUNT)) if weight in weights)

    hits = benchmark(probe_items)
    assert hits == ITEM_COUNT
