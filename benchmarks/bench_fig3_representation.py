"""Figure 3: accumulated (Eq. 3) pattern representation over one week.

Regenerates the accumulated category series and checks the properties the encoder
relies on: monotone growth, and progressive separation of the categories over time.
"""

from conftest import write_report

from repro.evaluation.figures import accumulated_category_series
from repro.utils.asciiplot import render_line_chart


def _build_series():
    return accumulated_category_series(days=7, bin_hours=6)


def test_figure_3_accumulated_representation(benchmark):
    series = benchmark.pedantic(_build_series, rounds=3, iterations=1)

    length = len(next(iter(series.values())))
    chart = render_line_chart(
        series,
        x_values=list(range(length)),
        title="Figure 3: accumulated category patterns (unit: 6 h, length: 1 week)",
    )
    write_report("fig3_representation", chart)

    # Monotone non-decreasing accumulated form.
    for values in series.values():
        assert all(b >= a for a, b in zip(values, values[1:]))

    # Separation grows along the accumulation: the spread across categories at the
    # end of the week is at least as large as after the first quarter of it.
    def spread(index):
        column = [values[index] for values in series.values()]
        return max(column) - min(column)

    assert spread(length - 1) >= spread(length // 4)
