"""Million-user streaming soak: bounded residency under open-loop arrivals.

Runs the ``open-soak-1m`` catalog scenario at its declared size — a million
users across 10k stations, streamed through a :class:`StationSource` with a
48-batch LRU residency cap — and persists ``BENCH_soak_1m.json``.  The
committed baseline pins the headline claims for the perf-trajectory gate
(``repro.evaluation.trajectory``):

* ``source.peak_resident`` — the memory bound under test: the high-water mark
  of resident station batches must never exceed the declared cap, however
  large the census grows;
* ``source.evictions`` — the LRU actually cycles (a zero here would mean the
  soak stopped exercising the cap);
* ``source.declared_users`` — the census the run claims to cover; shrinkage
  means the soak quietly stopped being a million-user soak.

Everything recorded is a deterministic function of the scenario seed: the
run replays byte-identically across executors and bit backends, which this
module asserts directly before writing the payload.

Run with:  PYTHONPATH=src python -m pytest benchmarks/bench_soak_1m.py
"""

import pytest
from conftest import write_json_result, write_report

from repro.evaluation.benchjson import workload_payload
from repro.utils.asciiplot import render_table
from repro.workloads import get_scenario, run_workload

#: Executors the soak is replayed under to pin transcript invariance.
EXECUTORS = ("serial", "thread", "process")
#: Bit-storage backends the soak is replayed under (same contract).
BIT_BACKENDS = ("python", "numpy")


@pytest.fixture(scope="session")
def soak_spec():
    """The catalog scenario, at its full declared (million-user) size."""
    return get_scenario("open-soak-1m")


@pytest.fixture(scope="session")
def soak_result(soak_spec):
    """One serial reference run shared by the assertions and the payload."""
    return run_workload(soak_spec, drive="open")


def test_soak_drive_throughput(benchmark, soak_spec):
    """Timing unit: the full open-loop soak end to end."""
    result = benchmark.pedantic(
        lambda: run_workload(soak_spec, drive="open"), rounds=1, iterations=1
    )
    assert result.round_count == soak_spec.offered.max_arrivals


def test_million_user_soak_trajectory(soak_spec, soak_result):
    """Pin the bounded-residency claims and persist the committed baseline."""
    source = soak_result.source_stats
    assert source is not None, "a streaming run must report source stats"
    spec_source = soak_spec.source

    # The headline claim: a million declared users, never more than the cap
    # resident at once, with the LRU actually cycling batches through.
    assert source["declared_users"] == 1_000_000
    assert source["peak_resident"] <= spec_source.max_resident
    assert source["evictions"] > 0
    assert source["built"] > spec_source.max_resident

    # Round cost scales with the touch window, not the declared city.
    assert spec_source.stations_per_round is not None
    for metrics in soak_result.rounds:
        assert metrics.active_station_count <= spec_source.stations_per_round

    # The virtual clock, the source's derivations and the LRU schedule are
    # all seed-determined: every executor and bit backend must replay the
    # same bytes and the same residency accounting.
    reference = soak_result.transcript_bytes()
    for executor in EXECUTORS[1:]:
        rerun = run_workload(soak_spec, drive="open", executor=executor)
        assert rerun.transcript_bytes() == reference, f"{executor} diverged"
        assert rerun.source_stats == source
    for backend in BIT_BACKENDS:
        rerun = run_workload(soak_spec, drive="open", bit_backend=backend)
        assert rerun.transcript_bytes() == reference, f"{backend} diverged"
        assert rerun.source_stats == source

    write_json_result("soak_1m", workload_payload(soak_result))

    latency = soak_result.cumulative["latency_s"]
    rows = [
        ["declared users", source["declared_users"]],
        ["stations", source["station_count"]],
        ["residency cap", source["max_resident"]],
        ["peak resident", source["peak_resident"]],
        ["batches built", source["built"]],
        ["evictions", source["evictions"]],
        ["arrivals served", soak_result.round_count],
        ["total bytes", soak_result.total_bytes],
        ["latency p99 s", round(latency.p99, 4)],
    ]
    write_report("soak_1m", render_table(["quantity", "value"], rows))
