"""Figure 4(d): storage cost (fraction of the naive method) versus pattern count.

Expected shape: the naive method duplicates the entire raw dataset at the data
center (flat in the pattern count), while the filter methods store the distributed
filter plus the reports — growing with the pattern count, as in the paper's
Figure 4(d); the WBF costs more than the plain BF (the per-bit weight pointers),
which is the storage trade-off the paper accepts for the accuracy gain.  With the
wire codec charging real encoded bytes, the WBF curve crosses naive within this
sweep at our synthetic users-to-patterns ratio (see bench_fig4c_communication.py).
"""

from conftest import write_json_result, write_report

from repro.core.encoder import PatternEncoder
from repro.evaluation.benchjson import comparison_sweep_payload
from repro.evaluation.reporting import comparison_series, format_comparison_sweep


def test_figure_4d_storage_cost(
    benchmark, figure4_largest_workload, figure4_config, figure4_sweep
):
    queries = list(figure4_largest_workload.queries)
    encoder = PatternEncoder(figure4_config)

    # The timed unit is the construction of the WBF itself (Algorithm 1), whose size
    # is what drives the filter-side storage.
    benchmark.pedantic(lambda: encoder.encode_batch(queries), rounds=1, iterations=1)

    report = format_comparison_sweep(
        figure4_sweep, "storage", "Figure 4(d): storage cost relative to the naive method"
    )
    write_report("fig4d_storage", report)
    write_json_result("fig4d_storage", comparison_sweep_payload(figure4_sweep))

    series = comparison_series(figure4_sweep, "storage")
    assert all(value == 1.0 for value in series["naive"])
    assert all(value < 0.35 for value in series["bf"])
    # Filter storage grows with the pattern count; in the paper's regime (left
    # half of the sweep) the WBF stays a fraction of naive.
    assert all(
        later > earlier for earlier, later in zip(series["wbf"], series["wbf"][1:])
    )
    assert series["wbf"][0] < 0.3
    assert series["wbf"][1] < 0.55
    # The weights make the WBF larger than the plain BF, never smaller.
    assert all(wbf >= bf for wbf, bf in zip(series["wbf"], series["bf"]))
