"""Figure 4(a): precision versus the number of query patterns (Naive vs BF vs WBF).

The benchmark times one full WBF matching round on the largest batch; the rendered
panel is produced from the shared query-count sweep.  Expected shape: naive and WBF
precision stay (near) 1.0, the plain Bloom filter is clearly lower and does not
improve as the number of patterns grows.
"""

from conftest import write_json_result, write_report

from repro.core.dimatching import DIMatchingProtocol
from repro.cluster import Cluster
from repro.evaluation.benchjson import comparison_sweep_payload
from repro.evaluation.reporting import comparison_series, format_comparison_sweep


def test_figure_4a_precision(benchmark, figure4_dataset, figure4_largest_workload, figure4_config, figure4_sweep):
    cluster = Cluster.adopt(figure4_dataset)
    queries = list(figure4_largest_workload.queries)

    benchmark.pedantic(
        lambda: cluster.drive(DIMatchingProtocol(figure4_config), queries, k=None),
        rounds=1,
        iterations=1,
    )

    report = format_comparison_sweep(
        figure4_sweep, "precision", "Figure 4(a): precision vs number of patterns"
    )
    write_report("fig4a_precision", report)
    write_json_result("fig4a_precision", comparison_sweep_payload(figure4_sweep))

    series = comparison_series(figure4_sweep, "precision")
    # Naive is the exact oracle.
    assert all(value == 1.0 for value in series["naive"])
    # WBF tracks the naive method closely at every pattern count.
    assert all(value >= 0.95 for value in series["wbf"])
    # The plain Bloom filter is clearly worse at every pattern count (the paper's
    # curve additionally trends downward; ours fluctuates around a much lower level,
    # see EXPERIMENTS.md).
    assert all(bf < wbf for bf, wbf in zip(series["bf"], series["wbf"]))
    assert max(series["bf"]) < 0.75
