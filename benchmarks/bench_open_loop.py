"""Open-loop saturation sweep: max sustainable QPS and graceful degradation.

Calibrates the cluster's virtual service time from a low-rate open-system run,
then sweeps scheduled (jitter-free) offered loads across multiples of the
implied capacity and records the latency/queue percentiles of every point.
The committed ``BENCH_open_loop.json`` baseline pins two headline claims for
the perf-trajectory gate (``repro.evaluation.trajectory``):

* ``max_sustainable_qps`` — the highest swept rate the cluster absorbs with
  negligible queueing, reported per executor (and asserted identical across
  them: the virtual clock is executor-invariant);
* ``below_saturation_p99_s`` — the flat part of the latency curve; growth
  here means service itself got slower, not just that we offered more load.

Everything recorded is a deterministic function of the spec seed — the sweep
replays bit-identically on every machine, executor and bit backend.

Run with:  PYTHONPATH=src python -m pytest benchmarks/bench_open_loop.py
"""

import pytest
from conftest import write_json_result, write_report

from repro.utils.asciiplot import render_table
from repro.workloads import OfferedLoad, RampPhase, WorkloadSpec, run_workload

#: Offered-load multiples of the calibrated capacity the sweep visits.
SWEEP_MULTIPLIERS = (0.25, 0.5, 0.75, 1.0, 1.25, 1.5)
#: Sweep points at or below this multiplier must stay queueing-free.
SUSTAINABLE_BELOW = 0.75
#: Arrivals per sweep point (enough for stable p99 at nearest-rank).
ARRIVALS_PER_POINT = 32
#: Executors the probe point is replayed under to pin invariance.
EXECUTORS = ("serial", "thread", "process")


def _sweep_spec(offered: OfferedLoad) -> WorkloadSpec:
    """The (small, fast) cluster every sweep point drives."""
    return WorkloadSpec(
        name="open-loop-sweep",
        description="saturation sweep harness",
        users_per_category=3,
        station_count=3,
        offered=offered,
        seed=1211,
    )


def _point_load(rate_qps: float) -> OfferedLoad:
    """A single scheduled plateau admitting exactly ARRIVALS_PER_POINT batches."""
    duration = (ARRIVALS_PER_POINT + 1) / rate_qps
    return OfferedLoad(
        rate_qps=rate_qps,
        process="scheduled",
        ramp=(RampPhase("plateau", duration, 1.0),),
        max_arrivals=ARRIVALS_PER_POINT,
    )


@pytest.fixture(scope="session")
def calibration():
    """Service time / capacity measured from a queueing-free low-rate run."""
    result = run_workload(_sweep_spec(_point_load(1.0)), drive="open")
    services = [m.latency_s - m.queue_delay_s for m in result.rounds]
    mean_service = sum(services) / len(services)
    assert result.cumulative["latency_s"].maximum < 1.0  # sanity: no queueing at 1 qps
    return {"service_time_s": mean_service, "capacity_qps": 1.0 / mean_service}


@pytest.fixture(scope="session")
def sweep(calibration):
    """One open run per multiplier, serial executor."""
    points = []
    for multiplier in SWEEP_MULTIPLIERS:
        rate = multiplier * calibration["capacity_qps"]
        result = run_workload(_sweep_spec(_point_load(rate)), drive="open")
        (window,) = result.phases
        latency = result.cumulative["latency_s"]
        queue = window.queue_delay
        points.append(
            {
                "multiplier": multiplier,
                "offered_qps": rate,
                "achieved_qps": window.achieved_qps,
                "arrivals": window.arrival_count,
                "latency_p50_s": latency.p50,
                "latency_p99_s": latency.p99,
                "queue_p99_s": queue.p99,
                "queue_max_s": queue.maximum,
                "transcript": result.transcript_bytes(),
            }
        )
    return points


def test_open_loop_drive_throughput(benchmark, calibration):
    """Timing unit: one saturated sweep point end to end."""
    rate = 1.25 * calibration["capacity_qps"]
    result = benchmark.pedantic(
        lambda: run_workload(_sweep_spec(_point_load(rate)), drive="open"),
        rounds=1,
        iterations=1,
    )
    assert result.round_count == ARRIVALS_PER_POINT


def test_graceful_saturation_trajectory(calibration, sweep):
    """Pin the saturation shape and persist the committed baseline payload."""
    service = calibration["service_time_s"]
    # p99 grows monotonically with offered load (small slack for the service
    # jitter between equal-rate batches) ...
    p99s = [point["latency_p99_s"] for point in sweep]
    for below, above in zip(p99s, p99s[1:]):
        assert above >= below - 0.1 * service
    # ... is flat below saturation (queueing-free: latency is pure service) ...
    below_saturation = [
        point for point in sweep if point["multiplier"] <= SUSTAINABLE_BELOW
    ]
    assert below_saturation
    for point in below_saturation:
        assert point["queue_p99_s"] <= 0.1 * service
    # ... and degrades gracefully past it: queueing dominates, nothing errors.
    saturated = sweep[-1]
    assert saturated["queue_max_s"] > service
    assert saturated["latency_p99_s"] > 2.0 * below_saturation[-1]["latency_p99_s"]
    assert saturated["achieved_qps"] < saturated["offered_qps"]

    sustainable = [
        point["offered_qps"]
        for point in sweep
        if point["queue_p99_s"] <= 0.1 * service
    ]
    assert sustainable, "no swept rate was sustainable — calibration is off"
    max_sustainable = max(sustainable)

    # The virtual clock is executor-invariant: replay the saturated point
    # under every executor and require byte-identical transcripts, then
    # report the (identical) per-executor capacity the gate tracks.
    probe_rate = saturated["offered_qps"]
    transcripts = {}
    for executor in EXECUTORS:
        result = run_workload(
            _sweep_spec(_point_load(probe_rate)), drive="open", executor=executor
        )
        transcripts[executor] = result.transcript_bytes()
    assert transcripts["thread"] == transcripts["serial"]
    assert transcripts["process"] == transcripts["serial"]
    assert transcripts["serial"] == saturated["transcript"]

    payload = {
        "scenario": "open-loop-sweep",
        "seed": 1211,
        "service_time_s": service,
        "capacity_qps": calibration["capacity_qps"],
        "max_sustainable_qps": {executor: max_sustainable for executor in EXECUTORS},
        "below_saturation_p99_s": below_saturation[-1]["latency_p99_s"],
        "sweep": [
            {key: value for key, value in point.items() if key != "transcript"}
            for point in sweep
        ],
    }
    write_json_result("open_loop", payload)

    rows = [
        [
            f"{point['multiplier']:g}",
            round(point["offered_qps"], 2),
            round(point["achieved_qps"], 2),
            round(point["latency_p50_s"], 4),
            round(point["latency_p99_s"], 4),
            round(point["queue_max_s"], 4),
        ]
        for point in sweep
    ]
    report = render_table(
        ["x capacity", "offered qps", "achieved qps", "p50 s", "p99 s", "queue max s"],
        rows,
    )
    write_report(
        "open_loop_sweep",
        f"service {service:.4f}s, capacity {calibration['capacity_qps']:.2f} qps, "
        f"max sustainable {max_sustainable:.2f} qps\n{report}",
    )
