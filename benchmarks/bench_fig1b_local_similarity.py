"""Figure 1(b): CDF of the number of similar local patterns among similar global patterns.

Regenerates Observation 2: among pairs of users whose *global* patterns are
ε-similar, the overwhelming majority share at least one ε-similar *local* pattern —
the property that makes station-level matching against fragment combinations viable.
"""

from conftest import write_report

from repro.datagen.workload import DatasetSpec, build_dataset
from repro.evaluation.figures import local_similarity_counts
from repro.utils.asciiplot import render_cdf, render_table


def _dataset():
    # Observation 2 is about users whose data really is split across stations; the
    # low colocation probability mirrors the paper's urban setting where home and
    # work cells almost always differ.
    return build_dataset(
        DatasetSpec(
            users_per_category=40,
            station_count=6,
            noise_level=0,
            cliques_per_place=2,
            replicated_decoys_per_category=0,
            colocation_probability=0.05,
            seed=19,
        )
    )


def test_figure_1b_local_similarity_cdf(benchmark):
    dataset = _dataset()
    counts = benchmark.pedantic(
        lambda: local_similarity_counts(dataset, epsilon=0, max_pairs=3000),
        rounds=1,
        iterations=1,
    )
    assert counts, "there must be globally similar pairs to analyse"

    share_with_similar_local = sum(1 for c in counts if c >= 1) / len(counts)
    distribution = {
        value: sum(1 for c in counts if c == value) / len(counts)
        for value in sorted(set(counts))
    }
    table = render_table(
        ["# similar local patterns", "fraction of similar global pairs"],
        [[value, fraction] for value, fraction in distribution.items()],
    )
    chart = render_cdf(
        [float(c) for c in counts],
        title="Figure 1(b): CDF of similar local patterns among similar global pairs",
    )
    write_report(
        "fig1b_local_similarity",
        f"{table}\n\nfraction of pairs with >= 1 similar local pattern: "
        f"{share_with_similar_local:.3f}\n\n{chart}",
    )

    # Observation 2: "the percentage that there exist more than one similar local
    # patterns is greater than 90%".  Our synthetic mobility model reproduces the
    # same qualitative dominance (measured ≈ 0.88-0.95 depending on the co-location
    # rate); the assertion requires the dominant share without over-fitting the
    # exact percentage.
    assert share_with_similar_local > 0.85
    assert sorted(counts)[len(counts) // 2] >= 1
