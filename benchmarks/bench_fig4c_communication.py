"""Figure 4(c): communication cost (fraction of the naive method) versus pattern count.

Expected shape: the naive upload is flat in the pattern count (it always ships the
whole raw dataset) while the filter methods' cost grows with the number of encoded
patterns — exactly the paper's Figure 4(c) curves.  At small-to-moderate batches
the filters move a small fraction of the naive bytes; because all byte counts are
now *real* wire-codec encodings (varint packing shrinks the naive upload too), the
WBF curve crosses naive within this sweep at our synthetic scale (~720 users per
48 queries, where the paper runs 3.6 M users per ≤500 patterns — their
users-to-patterns ratio keeps the crossover far out of frame).  (The BF-vs-WBF
ordering is scale-dependent — see bench_ablation_scale.py.)
"""

from conftest import write_json_result, write_report

from repro.baselines.bf_matching import BloomFilterProtocol
from repro.cluster import Cluster
from repro.evaluation.benchjson import comparison_sweep_payload
from repro.evaluation.reporting import comparison_series, format_comparison_sweep


def test_figure_4c_communication_cost(
    benchmark, figure4_dataset, figure4_largest_workload, figure4_config, figure4_sweep
):
    cluster = Cluster.adopt(figure4_dataset)
    queries = list(figure4_largest_workload.queries)

    benchmark.pedantic(
        lambda: cluster.drive(BloomFilterProtocol(figure4_config), queries, k=None),
        rounds=1,
        iterations=1,
    )

    report = format_comparison_sweep(
        figure4_sweep,
        "communication",
        "Figure 4(c): communication cost relative to the naive method",
    )
    write_report("fig4c_communication", report)
    write_json_result("fig4c_communication", comparison_sweep_payload(figure4_sweep))

    series = comparison_series(figure4_sweep, "communication")
    assert all(value == 1.0 for value in series["naive"])
    # The plain BF stays well below the naive upload at every pattern count.
    assert all(value < 0.35 for value in series["bf"])
    # WBF communication grows with the pattern count (the paper's curve shape)
    # while naive stays flat ...
    assert all(
        later > earlier
        for earlier, later in zip(series["wbf"], series["wbf"][1:])
    )
    # ... and in the paper's regime (users far outnumbering encoded patterns,
    # the left half of this sweep) the WBF moves a fraction of the naive bytes.
    assert series["wbf"][0] < 0.25
    assert series["wbf"][1] < 0.5
