"""Figure 4(c): communication cost (fraction of the naive method) versus pattern count.

Expected shape: both filter-based methods move only a small fraction of the bytes the
naive method ships, because the naive uplink carries every raw local pattern while
the filters summarise the whole query batch.  (The BF-vs-WBF ordering is
scale-dependent — see bench_ablation_scale.py and EXPERIMENTS.md.)
"""

from conftest import write_report

from repro.baselines.bf_matching import BloomFilterProtocol
from repro.distributed.simulator import DistributedSimulation
from repro.evaluation.reporting import comparison_series, format_comparison_sweep


def test_figure_4c_communication_cost(
    benchmark, figure4_dataset, figure4_largest_workload, figure4_config, figure4_sweep
):
    simulation = DistributedSimulation(figure4_dataset)
    queries = list(figure4_largest_workload.queries)

    benchmark.pedantic(
        lambda: simulation.run(BloomFilterProtocol(figure4_config), queries, k=None),
        rounds=1,
        iterations=1,
    )

    report = format_comparison_sweep(
        figure4_sweep,
        "communication",
        "Figure 4(c): communication cost relative to the naive method",
    )
    write_report("fig4c_communication", report)

    series = comparison_series(figure4_sweep, "communication")
    assert all(value == 1.0 for value in series["naive"])
    # Filter-based methods stay well below the naive upload at every pattern count.
    assert all(value < 0.6 for value in series["wbf"])
    assert all(value < 0.6 for value in series["bf"])
    # At the smallest batch the savings are dramatic (order of magnitude).
    assert series["wbf"][0] < 0.2
