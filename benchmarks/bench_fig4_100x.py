"""Figure 4 at 100x scale: one WBF round over 10,000 base stations.

The paper's Figure 4 runs at city scale (their 3.6 M users over thousands of
cells); our regular Figure-4 tier uses a 6-station synthetic city.  This tier
drives the *same protocol round* over a 10,000-station directly-constructed
dataset (:mod:`repro.datagen.scale`) — 100x the regular tier's pattern count —
and pins down two things:

* the deterministic round outcome (byte counts, report count, ranking and
  transcript digests), which the perf-trajectory gate tracks and the parity
  suites hold byte-identical across bit backends and executors;
* the hot-path speedup: the same round is re-run with the optimization
  switches off (payload-decode memoization, WBF mask probing, columnar
  aggregation) and must come out at least 3x slower — locking in that round
  cost scales with deltas, not cluster size.

Wall-clock numbers are recorded in the JSON as informational context only;
the gate never tracks them.
"""

import hashlib
import time

from conftest import write_json_result, write_report

import repro.wire.codec as codec
from repro.cluster import Cluster
from repro.core.aggregator import SimilarityRanker
from repro.core.config import DIMatchingConfig
from repro.core.dimatching import DIMatchingProtocol
from repro.core.wbf import WeightedBloomFilter
from repro.datagen.scale import build_scale_dataset, build_scale_queries
from repro.distributed.events import transcript_to_bytes

STATION_COUNT = 10_000
QUERY_COUNT = 16
SEED = 2012

#: The committed acceptance bar: optimized round cost at 10k stations must be
#: at least this many times cheaper than the switched-off path.
MIN_SPEEDUP = 3.0


def _ranked_digest(results) -> str:
    lines = "\n".join(f"{entry.user_id}:{entry.score!r}" for entry in results.users)
    return hashlib.sha256(lines.encode("utf-8")).hexdigest()


def _transcript_digest(transcript) -> str:
    return hashlib.sha256(transcript_to_bytes(transcript)).hexdigest()


def _drive(cluster, protocol, queries):
    start = time.perf_counter()
    outcome = cluster.drive(protocol, queries, k=None)
    return time.perf_counter() - start, outcome


def test_figure_4_100x_scale(benchmark):
    dataset = build_scale_dataset(
        station_count=STATION_COUNT, users_per_station=1, seed=SEED
    )
    queries = build_scale_queries(dataset, QUERY_COUNT, seed=SEED)
    cluster = Cluster.adopt(dataset)
    protocol = DIMatchingProtocol(DIMatchingConfig(epsilon=0, sample_count=8, hash_count=4))

    optimized_s, outcome = benchmark.pedantic(
        lambda: _drive(cluster, protocol, queries), rounds=1, iterations=1
    )

    # Same round with every hot-path switch off; results must be identical
    # and the optimized run must clear the committed speedup bar.
    codec.PAYLOAD_DECODE_CACHE_ENABLED = False
    WeightedBloomFilter.MASK_INDEX_ENABLED = False
    SimilarityRanker.COLUMNAR_ENABLED = False
    codec.clear_payload_decode_cache()
    try:
        unoptimized_s, reference = _drive(cluster, protocol, queries)
    finally:
        codec.PAYLOAD_DECODE_CACHE_ENABLED = True
        WeightedBloomFilter.MASK_INDEX_ENABLED = True
        SimilarityRanker.COLUMNAR_ENABLED = True

    assert reference.results == outcome.results
    assert reference.costs.downlink_bytes == outcome.costs.downlink_bytes
    assert reference.costs.uplink_bytes == outcome.costs.uplink_bytes
    assert _transcript_digest(reference.transcript) == _transcript_digest(
        outcome.transcript
    )

    speedup = unoptimized_s / optimized_s
    payload = {
        "station_count": STATION_COUNT,
        "user_count": dataset.user_count,
        "query_count": QUERY_COUNT,
        "round": {
            "downlink_bytes": outcome.costs.downlink_bytes,
            "uplink_bytes": outcome.costs.uplink_bytes,
            "report_count": outcome.costs.report_count,
            "ranked_count": len(outcome.results),
            "ranked_digest": _ranked_digest(outcome.results),
            "transcript_digest": _transcript_digest(outcome.transcript),
        },
        # Informational wall-clock context; the trajectory gate ignores it.
        "speedup": {
            "optimized_s": round(optimized_s, 3),
            "unoptimized_s": round(unoptimized_s, 3),
            "speedup": round(speedup, 2),
            "min_required": MIN_SPEEDUP,
        },
    }
    write_report(
        "fig4_100x",
        "Figure 4 at 100x scale: one WBF round over "
        f"{STATION_COUNT} stations / {dataset.user_count} users\n"
        f"  downlink={outcome.costs.downlink_bytes}B "
        f"uplink={outcome.costs.uplink_bytes}B "
        f"reports={outcome.costs.report_count}\n"
        f"  optimized={optimized_s:.2f}s unoptimized={unoptimized_s:.2f}s "
        f"speedup={speedup:.1f}x (bar: {MIN_SPEEDUP}x)",
    )
    write_json_result("fig4_100x", payload)

    assert outcome.costs.report_count > 0
    assert speedup >= MIN_SPEEDUP