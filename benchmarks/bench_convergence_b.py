"""Convergence study (Section V-B): matching accuracy versus the sample count ``b``.

The paper observes accuracy converging around b = 5 and stabilising by b = 12 over
four data groups; this bench sweeps b over four synthetic groups and checks the same
qualitative behaviour (accuracy improves with b and is stable between 12 and 16).
"""

from conftest import write_report

from repro.evaluation.experiments import convergence_study
from repro.evaluation.reporting import format_convergence_table

SAMPLE_COUNTS = (1, 2, 3, 5, 8, 12, 16)


def _run_study():
    return convergence_study(
        sample_counts=list(SAMPLE_COUNTS),
        group_count=4,
        users_per_category=12,
        station_count=6,
        query_count=12,
        epsilon=2,
        noise_level=1,
        seed=97,
    )


def test_convergence_of_sample_count(benchmark):
    results = benchmark.pedantic(_run_study, rounds=1, iterations=1)
    write_report("convergence_b", format_convergence_table(results))

    for group, per_group in results.items():
        # Accuracy at the paper's operating point (b = 12) beats the single-sample
        # setting, and is stable between b = 12 and b = 16.
        assert per_group[12] >= per_group[1], group
        assert abs(per_group[16] - per_group[12]) <= 0.1, group

    # Averaged over groups the curve is (weakly) improving up to the plateau.
    def mean_accuracy(b):
        return sum(per_group[b] for per_group in results.values()) / len(results)

    assert mean_accuracy(12) >= mean_accuracy(2)
    assert mean_accuracy(12) >= 0.9
