"""Figure 1(a): periodicity and divisibility of category communication patterns.

Regenerates the normalised two-day, six-hour-bin pattern series for the six
population categories and checks the two properties the paper reads off the figure:
daily periodicity and cross-category divisibility.
"""

from conftest import write_report

from repro.evaluation.figures import category_mean_series
from repro.utils.asciiplot import render_line_chart


def _build_series():
    return category_mean_series(days=2, bin_hours=6)


def test_figure_1a_periodicity(benchmark):
    series = benchmark.pedantic(_build_series, rounds=3, iterations=1)

    chart = render_line_chart(
        series,
        x_values=list(range(len(next(iter(series.values()))))),
        title="Figure 1(a): normalised category patterns (unit: 6 h, length: 2 days)",
    )
    write_report("fig1a_periodicity", chart)

    # Daily periodicity (Observation 1): the second day repeats the first.
    for values in series.values():
        half = len(values) // 2
        assert values[:half] == values[half:]

    # Divisibility: the six categories are pairwise distinguishable.
    signatures = {tuple(values) for values in series.values()}
    assert len(signatures) == len(series) == 6
