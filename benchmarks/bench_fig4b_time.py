"""Figure 4(b): time cost versus the number of query patterns.

Expected shape: the naive method (which ships and centrally matches the entire
dataset) is the slowest and grows the fastest with the number of patterns; the
WBF-based DI-matching stays cheapest and is nearly insensitive to the pattern count
because the per-station probing cost is fixed at b·k bit probes per candidate.
"""

from conftest import write_json_result, write_report

from repro.baselines.naive import NaiveProtocol
from repro.cluster import Cluster
from repro.evaluation.benchjson import comparison_sweep_payload
from repro.evaluation.reporting import comparison_series, format_comparison_sweep


def test_figure_4b_time_cost(benchmark, figure4_dataset, figure4_largest_workload, figure4_sweep):
    cluster = Cluster.adopt(figure4_dataset)
    queries = list(figure4_largest_workload.queries)

    # The timed unit is the naive method on the largest batch — the paper's worst case.
    benchmark.pedantic(
        lambda: cluster.drive(NaiveProtocol(epsilon=0), queries, k=None),
        rounds=1,
        iterations=1,
    )

    report = format_comparison_sweep(
        figure4_sweep, "time", "Figure 4(b): total time (s) vs number of patterns"
    )
    write_report("fig4b_time", report)
    write_json_result("fig4b_time", comparison_sweep_payload(figure4_sweep))

    series = comparison_series(figure4_sweep, "time")
    # The naive method is the most expensive at every pattern count, and WBF stays
    # below it.  (The paper additionally reports the naive curve growing steeply
    # with the pattern count; at our synthetic scale the naive cost is dominated by
    # shipping the raw data, which is constant in the pattern count, so that growth
    # trend is muted.)  Station/encode times are measured wall-clock, so the largest
    # batch — where real-codec WBF traffic narrows the gap — gets a noise margin;
    # the paper's regime (smaller batches) is asserted strictly.
    half = len(series["wbf"]) // 2 + 1
    assert all(
        naive >= wbf
        for naive, wbf in zip(series["naive"][:half], series["wbf"][:half])
    )
    assert all(
        wbf < naive * 1.2 for naive, wbf in zip(series["naive"], series["wbf"])
    )
    assert series["bf"][-1] < series["naive"][-1]
