"""Ablation: how the communication comparison scales with the population size.

The paper's communication result comes from its city-scale setting (3.6 M users,
≤ 500 query patterns), where the raw-data upload utterly dominates every other
traffic component.  At small synthetic scales the distributed filter is a visible
fraction of the total instead.  This bench sweeps the number of users at a fixed
query batch and reports, for each scale, the naive / BF / WBF communication volumes
and the uplink split — showing (a) the WBF's relative advantage over naive widening
with scale and (b) the BF's uplink of (false-positive) id reports growing with the
population, the mechanism the paper credits the weight scheme for cutting down.
"""

from conftest import write_report

from repro.core.config import DIMatchingConfig
from repro.datagen.workload import DatasetSpec, build_dataset, build_query_workload
from repro.evaluation.experiments import run_comparison
from repro.utils.asciiplot import render_table

USERS_PER_CATEGORY = (10, 30, 60, 120)


def _run_scale(users_per_category, config):
    dataset = build_dataset(
        DatasetSpec(
            users_per_category=users_per_category,
            station_count=6,
            noise_level=0,
            cliques_per_place=2,
            replicated_decoys_per_category=2,
            seed=59,
        )
    )
    workload = build_query_workload(dataset, 6, epsilon=0, seed=59)
    result = run_comparison(dataset, workload, config, methods=("naive", "bf", "wbf"))
    return {
        "users": dataset.user_count,
        "naive_bytes": result.outcome("naive").costs.communication_bytes,
        "bf_bytes": result.outcome("bf").costs.communication_bytes,
        "wbf_bytes": result.outcome("wbf").costs.communication_bytes,
        "bf_uplink": result.outcome("bf").costs.uplink_bytes,
        "wbf_uplink": result.outcome("wbf").costs.uplink_bytes,
    }


def test_ablation_communication_scaling(benchmark):
    config = DIMatchingConfig(epsilon=0, sample_count=12)

    def run_sweep():
        return [_run_scale(count, config) for count in USERS_PER_CATEGORY]

    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    write_report(
        "ablation_scale",
        render_table(
            ["users", "naive bytes", "bf bytes", "wbf bytes", "bf uplink", "wbf uplink"],
            [
                [
                    r["users"],
                    r["naive_bytes"],
                    r["bf_bytes"],
                    r["wbf_bytes"],
                    r["bf_uplink"],
                    r["wbf_uplink"],
                ]
                for r in rows
            ],
        ),
    )

    # The naive upload grows linearly with the population while the filter downlink
    # is fixed by the query batch, so the WBF's relative advantage widens with scale
    # (with real wire-codec bytes the crossover sits around a few hundred users for
    # this six-query batch; the paper's 3.6 M-user setting is far beyond it).
    ratios = [r["wbf_bytes"] / r["naive_bytes"] for r in rows]
    assert ratios[-1] < ratios[0] / 4
    assert ratios[-1] < 0.55

    # The BF uplink (dominated by false-positive id reports) grows with the
    # population — at city scale this is the component that would dwarf everything
    # else, which is what the weight scheme cuts down.  The WBF uplink grows only
    # with the number of true matches and report size.
    assert rows[-1]["bf_uplink"] > rows[0]["bf_uplink"]
    bf_false_positive_report_ratio = rows[-1]["bf_uplink"] / rows[0]["bf_uplink"]
    assert bf_false_positive_report_ratio > 3
