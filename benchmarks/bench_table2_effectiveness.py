"""Table II: effectiveness (precision / recall / F1) on the ground-truth cohort.

Regenerates the four-day effectiveness table on the synthetic 310-person cohort with
ε = 2 and timing-jitter noise.  The paper reports ≥ 0.97 precision and ≥ 0.99 recall;
the reproduction requires the same qualitative level (≥ 0.95 on average, ≥ 0.9 on
every day).
"""

from conftest import write_report

from repro.evaluation.experiments import effectiveness_study
from repro.evaluation.reporting import format_effectiveness_table


def _run_study():
    return effectiveness_study(
        day_count=4,
        cohort_size=310,
        queries_per_category=2,
        epsilon=2,
        noise_level=1,
        sample_count=12,
        seed=2009,
    )


def test_table_2_effectiveness(benchmark):
    rows = benchmark.pedantic(_run_study, rounds=1, iterations=1)
    write_report("table2_effectiveness", format_effectiveness_table(rows))

    assert len(rows) == 4
    for row in rows:
        assert row.precision >= 0.9, row
        assert row.recall >= 0.9, row
        assert row.f1 >= 0.9, row

    mean_f1 = sum(row.f1 for row in rows) / len(rows)
    assert mean_f1 >= 0.95
