"""Microbenchmarks of the binary wire codec.

Measures encode/decode throughput for the artifacts the simulated environment
actually ships — the Figure-4-scale WBF dissemination batch and a station's
match-report upload — parametrized over the available bit backends, plus the
zlib-compressed variant.  The broadcast path additionally exercises
``encode_cached``: the simulator encodes one artifact per *round*, not per
station, and this benchmark keeps that O(1) re-send property honest.

Run with:  PYTHONPATH=src python -m pytest benchmarks/bench_wire_codec.py
"""

from fractions import Fraction

import pytest
from conftest import write_json_result

from repro import wire
from repro.bloom.backend import available_backends
from repro.core.config import DIMatchingConfig
from repro.core.encoder import PatternEncoder
from repro.core.protocol import MatchReport
from repro.distributed.messages import Message, MessageKind
from repro.timeseries.pattern import LocalPattern
from repro.timeseries.query import QueryPattern

BACKENDS = available_backends()

QUERY_COUNT = 12
REPORT_COUNT = 500


@pytest.fixture(params=BACKENDS)
def backend(request):
    return request.param


def _queries() -> list[QueryPattern]:
    queries = []
    for index in range(QUERY_COUNT):
        values_a = [(index + offset) % 5 for offset in range(24)]
        values_b = [(index * 3 + offset) % 4 for offset in range(24)]
        queries.append(
            QueryPattern(
                f"query-{index:04d}",
                [
                    LocalPattern(f"user-{index}", values_a, "s1"),
                    LocalPattern(f"user-{index}", values_b, "s2"),
                ],
            )
        )
    return queries


def _batch(backend_name: str):
    config = DIMatchingConfig(sample_count=12, epsilon=1, bit_backend=backend_name)
    return PatternEncoder(config).encode_batch(_queries())


def _reports() -> list[MatchReport]:
    return [
        MatchReport(
            user_id=f"user-{index:05d}",
            station_id="station-7",
            weight=Fraction(index % 13 + 1, 17),
            query_id=f"query-{index % QUERY_COUNT:04d}",
        )
        for index in range(REPORT_COUNT)
    ]


def test_encode_dissemination_batch(benchmark, backend):
    batch = _batch(backend)

    data = benchmark(lambda: wire.encode(batch))
    assert data[:4] == wire.MAGIC


def test_decode_dissemination_batch(benchmark, backend):
    data = wire.encode(_batch(backend))

    decoded = benchmark(lambda: wire.decode(data, backend=backend))
    assert decoded.query_count == QUERY_COUNT


def test_encode_dissemination_batch_compressed(benchmark, backend):
    batch = _batch(backend)

    data = benchmark(lambda: wire.encode(batch, compress=True))
    assert wire.decode(data, backend=backend) == batch


def test_broadcast_reuses_cached_encoding(benchmark, backend):
    """One round's broadcast: N station messages sharing one encoded artifact."""
    batch = _batch(backend)
    stations = [f"station-{index}" for index in range(64)]
    wire.encode_cached(batch)  # warm, as after the first send

    def broadcast() -> int:
        total = 0
        for station in stations:
            message = Message("data-center", station, MessageKind.FILTER_DISSEMINATION, batch)
            total += message.size_bytes()
        return total

    total = benchmark(broadcast)
    assert total >= 64 * len(wire.encode_cached(batch))


def test_encode_report_upload(benchmark):
    reports = _reports()

    data = benchmark(lambda: wire.encode(reports))
    assert len(data) > REPORT_COUNT  # at least a byte per report, clearly more


def test_decode_report_upload(benchmark):
    data = wire.encode(_reports())

    decoded = benchmark(lambda: wire.decode(data))
    assert len(decoded) == REPORT_COUNT


def test_write_machine_readable_sizes(benchmark):
    """Persist the deterministic encoded sizes as BENCH_wire_codec.json."""
    batch = _batch(BACKENDS[0])
    reports = _reports()

    plain = benchmark(lambda: wire.encode(batch))
    compressed = wire.encode(batch, compress=True)
    report_bytes = wire.encode(reports)
    payload = {
        "query_count": QUERY_COUNT,
        "report_count": REPORT_COUNT,
        "batch_bytes": len(plain),
        "batch_bytes_zlib": len(compressed),
        "report_upload_bytes": len(report_bytes),
        "bytes_per_report": len(report_bytes) / REPORT_COUNT,
    }
    path = write_json_result("wire_codec", payload)
    assert path.name == "BENCH_wire_codec.json"
    assert len(compressed) < len(plain)
