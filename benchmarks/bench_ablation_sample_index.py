"""Ablation: hashing (time index, value) pairs versus bare accumulated values.

The paper hashes accumulated values only; this implementation additionally tags each
sampled value with its time index by default.  The bench quantifies why: without the
tag, accumulated values that repeat across time (plateaus during inactive hours) and
coincide across combined patterns blur the weight-agreement test, and precision
drops sharply.  The tag costs nothing (the filter is sized per inserted item either
way), so the tagged variant is the library default; this is documented as a
deviation from the paper's description in DESIGN.md.
"""

from conftest import write_report

from repro.core.config import DIMatchingConfig
from repro.datagen.workload import DatasetSpec, build_dataset, build_query_workload
from repro.evaluation.experiments import run_comparison
from repro.utils.asciiplot import render_table


def _environment():
    dataset = build_dataset(
        DatasetSpec(
            users_per_category=30,
            station_count=6,
            noise_level=0,
            cliques_per_place=2,
            replicated_decoys_per_category=2,
            seed=83,
        )
    )
    workload = build_query_workload(dataset, 12, epsilon=0, seed=83)
    return dataset, workload


def test_ablation_sample_index_tagging(benchmark):
    dataset, workload = _environment()
    configs = {
        "with index tag": DIMatchingConfig(epsilon=0, include_sample_index=True),
        "values only (paper)": DIMatchingConfig(epsilon=0, include_sample_index=False),
    }

    def run_all():
        rows = {}
        for label, config in configs.items():
            result = run_comparison(dataset, workload, config, methods=("bf", "wbf"))
            rows[label] = {
                "wbf_precision": result.outcome("wbf").metrics.precision,
                "bf_precision": result.outcome("bf").metrics.precision,
            }
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    write_report(
        "ablation_sample_index",
        render_table(
            ["variant", "wbf precision", "bf precision"],
            [[label, r["wbf_precision"], r["bf_precision"]] for label, r in rows.items()],
        ),
    )

    # The index tag is load-bearing: tagged WBF matches the oracle, the untagged
    # variant loses substantial precision, and tagging never hurts the plain BF.
    assert rows["with index tag"]["wbf_precision"] >= 0.95
    assert (
        rows["with index tag"]["wbf_precision"]
        > rows["values only (paper)"]["wbf_precision"]
    )
    assert (
        rows["with index tag"]["bf_precision"]
        >= rows["values only (paper)"]["bf_precision"] - 0.05
    )
